// Journaled checkpoints. The paper's phase 2 ran for six months; a crawl
// at that scale must survive process death at any instant without losing
// or duplicating work. The old checkpoint rewrote the full account list
// as one gob blob — O(crawl) bytes per flush and phase-2-only. This
// journal is append-only: every completed unit of work (a detailed user,
// a catalog entry, a game's achievements, a categorized group, a
// phase-completion marker) is one length-prefixed, CRC-guarded gob record
// appended to the active segment. A flush touches exactly one segment;
// segments rotate at a size threshold; replay tolerates a crash-truncated
// tail record by truncating it away and resuming the append from there.

package crawler

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"steamstudy/internal/dataset"
)

// Record kinds, one per resumable unit of crawl work.
const (
	kindUser      uint8 = 1 // phase 2: one fully detailed account
	kindGame      uint8 = 2 // phase 3: one catalog entry
	kindAch       uint8 = 3 // phase 4: one game's achievement list
	kindGroup     uint8 = 4 // phase 5: one categorized group
	kindPhaseDone uint8 = 5 // a phase completed
)

// journalRecord is the union of everything the journal stores. Exactly
// one payload field is set, selected by Kind.
type journalRecord struct {
	Kind  uint8
	Phase uint8 // kindPhaseDone: which phase finished

	User  *dataset.UserRecord
	Game  *dataset.GameRecord
	Group *dataset.GroupRecord

	// kindAch payload: the achievements (possibly empty) of one app.
	AppID        uint32
	Achievements []dataset.AchievementRecord
}

// crawlState is the result of replaying a journal: everything a resumed
// crawl can skip re-fetching. The index maps make replay idempotent: a
// unit of work journaled twice (a crash can land between the append
// hitting disk and the in-memory ack, and the dead process's successor
// may legitimately redo in-flight work) replaces its earlier record
// instead of appearing twice, so resume never double-counts a user, game
// or group. The last record wins — it is the younger observation.
type crawlState struct {
	users     []dataset.UserRecord
	userIdx   map[uint64]int
	games     []dataset.GameRecord
	gameIdx   map[uint32]int
	groups    []dataset.GroupRecord
	groupIdx  map[uint64]int
	ach       map[uint32][]dataset.AchievementRecord
	achDone   map[uint32]bool
	phaseDone [6]bool
}

func newCrawlState() *crawlState {
	return &crawlState{
		userIdx:  make(map[uint64]int),
		gameIdx:  make(map[uint32]int),
		groupIdx: make(map[uint64]int),
		ach:      make(map[uint32][]dataset.AchievementRecord),
		achDone:  make(map[uint32]bool),
	}
}

func (st *crawlState) apply(rec *journalRecord) {
	switch rec.Kind {
	case kindUser:
		if rec.User != nil {
			if i, ok := st.userIdx[rec.User.SteamID]; ok {
				st.users[i] = *rec.User
			} else {
				st.userIdx[rec.User.SteamID] = len(st.users)
				st.users = append(st.users, *rec.User)
			}
		}
	case kindGame:
		if rec.Game != nil {
			if i, ok := st.gameIdx[rec.Game.AppID]; ok {
				st.games[i] = *rec.Game
			} else {
				st.gameIdx[rec.Game.AppID] = len(st.games)
				st.games = append(st.games, *rec.Game)
			}
		}
	case kindAch:
		st.ach[rec.AppID] = rec.Achievements
		st.achDone[rec.AppID] = true
	case kindGroup:
		if rec.Group != nil {
			if i, ok := st.groupIdx[rec.Group.GID]; ok {
				st.groups[i] = *rec.Group
			} else {
				st.groupIdx[rec.Group.GID] = len(st.groups)
				st.groups = append(st.groups, *rec.Group)
			}
		}
	case kindPhaseDone:
		if int(rec.Phase) < len(st.phaseDone) {
			st.phaseDone[rec.Phase] = true
		}
	}
}

// snapshot assembles the replayed state into a dataset snapshot: games
// get their journaled achievement sets attached, and every section is
// put in canonical ID order — the same shape a completed Run produces.
func (st *crawlState) snapshot(collectedAt int64) *dataset.Snapshot {
	snap := &dataset.Snapshot{
		CollectedAt: collectedAt,
		Users:       st.users,
		Games:       st.games,
		Groups:      st.groups,
	}
	for i := range snap.Games {
		if ach, ok := st.ach[snap.Games[i].AppID]; ok {
			snap.Games[i].Achievements = ach
		}
	}
	sortSnapshot(snap)
	return snap
}

const (
	segPrefix = "journal-"
	segSuffix = ".seg"
	// baseName is the compacted prefix of the journal: everything sealed
	// by the last Compact, as one CRC-framed gob blob. Replay loads it
	// first, then only the segments appended since, bounding replay time.
	baseName = "journal-base.gob"
	// recHeaderSize prefixes every record: uint32 payload length +
	// uint32 CRC-32 (IEEE) of the payload, both big-endian.
	recHeaderSize = 8
	// defaultSegmentBytes rotates segments at 4 MiB.
	defaultSegmentBytes = 4 << 20
)

// journalCrashHook, when non-nil, is consulted at named crashpoints in
// the journal's write path; returning an error aborts there, leaving the
// files exactly as a process death at that instant would. Test-only.
// Points: "append" (record durable in the segment, caller not yet acked),
// "compact-sealed" (base written and verified, sealed segments not yet
// deleted).
var journalCrashHook func(point string) error

func journalCrash(point string) error {
	if h := journalCrashHook; h != nil {
		return h(point)
	}
	return nil
}

// journal is the append side. All methods are safe for concurrent use.
type journal struct {
	dir     string
	maxSeg  int64
	metrics *Metrics

	mu       sync.Mutex
	f        *os.File
	seq      int
	size     int64
	appended int64 // records appended since open; guards Compact
}

func segName(seq int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix)
}

func segSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil {
		return 0, false
	}
	return n, true
}

// openJournal replays the base snapshot (if a Compact ever ran) and every
// live segment under dir (creating it if needed), then opens the last
// segment for appending. A torn record at the very tail — a crash
// mid-append — is truncated away and replay succeeds; corruption
// anywhere else is an error, because data after it would silently vanish.
func openJournal(dir string, maxSeg int64, m *Metrics) (*journal, *crawlState, error) {
	if maxSeg <= 0 {
		maxSeg = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("crawler: journal dir: %w", err)
	}

	st := newCrawlState()
	// A base, when present, replaces the segments it sealed. Segments at
	// or below its sequence may still exist if a crash landed between the
	// base publish and the segment deletes; they are skipped (the base
	// already holds their records, possibly superseded) and swept here.
	baseSeq := 0
	if base, err := readBase(filepath.Join(dir, baseName)); err != nil {
		return nil, nil, fmt.Errorf("crawler: journal base: %w", err)
	} else if base != nil {
		st.applyBase(base)
		baseSeq = base.UpToSeq
		if m != nil {
			m.JournalRecords.Add(int64(len(base.Users) + len(base.Games) + len(base.Groups) + len(base.AchDone)))
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("crawler: journal dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		n, ok := segSeq(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		if n <= baseSeq {
			os.Remove(filepath.Join(dir, e.Name())) // sealed leftover; best-effort sweep
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)

	j := &journal{dir: dir, maxSeg: maxSeg, metrics: m, seq: baseSeq + 1}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		path := filepath.Join(dir, segName(seq))
		valid, err := replaySegment(path, st, m)
		if err != nil {
			if !last {
				return nil, nil, fmt.Errorf("crawler: journal segment %s: %w", path, err)
			}
			// Torn tail in the final segment: drop the partial record and
			// resume appending right after the last whole one.
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, nil, fmt.Errorf("crawler: journal truncate %s: %w", segName(seq), terr)
			}
		}
		if last {
			j.seq = seq
			j.size = valid
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("crawler: journal open: %w", err)
	}
	j.f = f
	if m != nil {
		m.JournalSegments.Store(int64(len(seqs)))
		if len(seqs) == 0 {
			m.JournalSegments.Store(1)
		}
	}
	return j, st, nil
}

// replaySegment applies every whole record in the segment to st and
// returns the byte offset just past the last whole record. The error is
// non-nil when the segment ends in a partial or corrupt record; it names
// the record index and byte offset so a failed resume points at the exact
// spot in the offending shard file, not just "record 17 somewhere".
func replaySegment(path string, st *crawlState, m *Metrics) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var (
		valid  int64
		index  int64
		header [recHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF {
				return valid, nil // clean end
			}
			return valid, fmt.Errorf("record %d at byte offset %d: torn record header: %w", index, valid, err)
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, fmt.Errorf("record %d at byte offset %d: torn record payload: %w", index, valid, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid, fmt.Errorf("record %d at byte offset %d: record checksum mismatch", index, valid)
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return valid, fmt.Errorf("record %d at byte offset %d: record decode: %w", index, valid, err)
		}
		st.apply(&rec)
		valid += recHeaderSize + int64(length)
		index++
		if m != nil {
			m.JournalRecords.Add(1)
		}
	}
}

// append encodes one record, writes it to the active segment, and flushes
// it to the OS, rotating to a fresh segment first when the active one is
// full. One append touches exactly one segment.
func (j *journal) append(rec *journalRecord) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, recHeaderSize)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("crawler: journal encode: %w", err)
	}
	b := buf.Bytes()
	payload := b[recHeaderSize:]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	if j.size > 0 && j.size+int64(len(b)) > j.maxSeg {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("crawler: journal write: %w", err)
	}
	j.size += int64(len(b))
	j.appended++
	if j.metrics != nil {
		j.metrics.JournalRecords.Add(1)
	}
	// Crashpoint: the record is in the file, the caller has not been
	// acked. A death here journals the unit of work without its ack — the
	// successor may redo and re-append it, which replay deduplicates.
	if err := journalCrash("append"); err != nil {
		return err
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and atomically
// switches appends to the next one.
func (j *journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("crawler: journal sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("crawler: journal close: %w", err)
	}
	j.seq++
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("crawler: journal rotate: %w", err)
	}
	j.f = f
	j.size = 0
	if j.metrics != nil {
		j.metrics.JournalSegments.Add(1)
	}
	return nil
}

// Position reports the active segment index and its byte size, for the
// progress log.
func (j *journal) Position() (seg int, offset int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.size
}

// Close seals the journal (idempotent).
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.f.Sync()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// journalBase is the compacted prefix of a journal: the fully replayed
// state up to and including segment UpToSeq, stored as one CRC-framed gob
// blob so a resume reads it in a single decode instead of re-replaying
// months of segments.
type journalBase struct {
	UpToSeq   int
	Users     []dataset.UserRecord
	Games     []dataset.GameRecord
	Groups    []dataset.GroupRecord
	Ach       map[uint32][]dataset.AchievementRecord
	AchDone   map[uint32]bool
	PhaseDone [6]bool
}

// applyBase seeds the crawl state from a compacted base.
func (st *crawlState) applyBase(b *journalBase) {
	for i := range b.Users {
		st.userIdx[b.Users[i].SteamID] = len(st.users)
		st.users = append(st.users, b.Users[i])
	}
	for i := range b.Games {
		st.gameIdx[b.Games[i].AppID] = len(st.games)
		st.games = append(st.games, b.Games[i])
	}
	for i := range b.Groups {
		st.groupIdx[b.Groups[i].GID] = len(st.groups)
		st.groups = append(st.groups, b.Groups[i])
	}
	for app, ach := range b.Ach {
		st.ach[app] = ach
	}
	for app, done := range b.AchDone {
		st.achDone[app] = done
	}
	st.phaseDone = b.PhaseDone
}

// readBase loads and CRC-verifies a compacted base. A missing file
// returns (nil, nil); a corrupt one is an error — unlike a torn segment
// tail there is no safe way to use half a base, and the sealed segments
// it replaced are gone.
func readBase(path string) (*journalBase, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < recHeaderSize {
		return nil, errors.New("base truncated inside header")
	}
	length := binary.BigEndian.Uint32(raw[0:4])
	sum := binary.BigEndian.Uint32(raw[4:8])
	payload := raw[recHeaderSize:]
	if uint32(len(payload)) != length {
		return nil, fmt.Errorf("base payload is %d bytes, header records %d", len(payload), length)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("base checksum mismatch")
	}
	var b journalBase
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&b); err != nil {
		return nil, fmt.Errorf("base decode: %w", err)
	}
	return &b, nil
}

// writeBase durably publishes a base: CRC-framed gob to a temp file,
// fsync, rename, directory fsync.
func writeBase(dir string, b *journalBase) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, recHeaderSize))
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return fmt.Errorf("crawler: base encode: %w", err)
	}
	raw := buf.Bytes()
	payload := raw[recHeaderSize:]
	binary.BigEndian.PutUint32(raw[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(raw[4:8], crc32.ChecksumIEEE(payload))

	f, err := os.CreateTemp(dir, ".tmp-base-")
	if err != nil {
		return fmt.Errorf("crawler: base temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("crawler: base write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, baseName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("crawler: base publish: %w", err)
	}
	return syncJournalDir(dir)
}

// syncJournalDir fsyncs the journal directory so renames and deletes are
// durable; filesystems that cannot sync directories are tolerated.
func syncJournalDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("crawler: journal dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("crawler: journal dir sync: %w", err)
	}
	return nil
}

// Compact seals everything the journal currently holds — the replayed
// state st, which must be exactly what openJournal returned with no
// appends since — into one verified base snapshot, deletes the sealed
// segments, and starts a fresh active segment. Replay cost after a
// compaction is one base decode plus only the records appended since,
// bounding resume time on a months-long crawl. The base is read back and
// verified before any segment is deleted, so a failed compaction never
// costs data: at worst the old segments and an unused base coexist.
func (j *journal) Compact(st *crawlState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	// st must cover everything on disk. Records appended through this
	// journal instance are not in the st its openJournal returned, and a
	// base built from that stale state would silently drop them when the
	// sealed segments are deleted — refuse rather than lose data.
	if j.appended > 0 {
		return fmt.Errorf("crawler: compact refused: %d records appended since open (reopen the journal and compact before appending)", j.appended)
	}
	// Seal the active segment.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("crawler: compact sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		j.f = nil
		return fmt.Errorf("crawler: compact close: %w", err)
	}
	j.f = nil
	upTo := j.seq

	base := &journalBase{
		UpToSeq:   upTo,
		Users:     st.users,
		Games:     st.games,
		Groups:    st.groups,
		Ach:       st.ach,
		AchDone:   st.achDone,
		PhaseDone: st.phaseDone,
	}
	if err := writeBase(j.dir, base); err != nil {
		return err
	}
	// Verify the just-written base before deleting what it replaces.
	got, err := readBase(filepath.Join(j.dir, baseName))
	if err != nil {
		return fmt.Errorf("crawler: compact verification: %w", err)
	}
	if got.UpToSeq != upTo || len(got.Users) != len(st.users) ||
		len(got.Games) != len(st.games) || len(got.Groups) != len(st.groups) {
		return fmt.Errorf("crawler: compact verification: base read back with %d/%d/%d records, want %d/%d/%d",
			len(got.Users), len(got.Games), len(got.Groups), len(st.users), len(st.games), len(st.groups))
	}
	if err := journalCrash("compact-sealed"); err != nil {
		return err
	}

	// Delete the sealed segments; a crash mid-delete leaves leftovers the
	// next openJournal sweeps.
	for seq := 1; seq <= upTo; seq++ {
		if err := os.Remove(filepath.Join(j.dir, segName(seq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("crawler: compact removing %s: %w", segName(seq), err)
		}
	}
	if err := syncJournalDir(j.dir); err != nil {
		return err
	}

	// Fresh active segment after the base.
	j.seq = upTo + 1
	j.size = 0
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("crawler: compact reopen: %w", err)
	}
	j.f = f
	if j.metrics != nil {
		j.metrics.JournalSegments.Store(1)
	}
	return nil
}

// Convenience appenders used by the crawl phases.

func (j *journal) appendUser(u *dataset.UserRecord) error {
	return j.append(&journalRecord{Kind: kindUser, User: u})
}

func (j *journal) appendGame(g *dataset.GameRecord) error {
	return j.append(&journalRecord{Kind: kindGame, Game: g})
}

func (j *journal) appendAch(appID uint32, ach []dataset.AchievementRecord) error {
	return j.append(&journalRecord{Kind: kindAch, AppID: appID, Achievements: ach})
}

func (j *journal) appendGroup(g *dataset.GroupRecord) error {
	return j.append(&journalRecord{Kind: kindGroup, Group: g})
}

func (j *journal) appendPhaseDone(phase uint8) error {
	return j.append(&journalRecord{Kind: kindPhaseDone, Phase: phase})
}
