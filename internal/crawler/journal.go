// Journaled checkpoints. The paper's phase 2 ran for six months; a crawl
// at that scale must survive process death at any instant without losing
// or duplicating work. The old checkpoint rewrote the full account list
// as one gob blob — O(crawl) bytes per flush and phase-2-only. This
// journal is append-only: every completed unit of work (a detailed user,
// a catalog entry, a game's achievements, a categorized group, a
// phase-completion marker) is one length-prefixed, CRC-guarded gob record
// appended to the active segment. A flush touches exactly one segment;
// segments rotate at a size threshold; replay tolerates a crash-truncated
// tail record by truncating it away and resuming the append from there.

package crawler

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"steamstudy/internal/dataset"
)

// Record kinds, one per resumable unit of crawl work.
const (
	kindUser      uint8 = 1 // phase 2: one fully detailed account
	kindGame      uint8 = 2 // phase 3: one catalog entry
	kindAch       uint8 = 3 // phase 4: one game's achievement list
	kindGroup     uint8 = 4 // phase 5: one categorized group
	kindPhaseDone uint8 = 5 // a phase completed
)

// journalRecord is the union of everything the journal stores. Exactly
// one payload field is set, selected by Kind.
type journalRecord struct {
	Kind  uint8
	Phase uint8 // kindPhaseDone: which phase finished

	User  *dataset.UserRecord
	Game  *dataset.GameRecord
	Group *dataset.GroupRecord

	// kindAch payload: the achievements (possibly empty) of one app.
	AppID        uint32
	Achievements []dataset.AchievementRecord
}

// crawlState is the result of replaying a journal: everything a resumed
// crawl can skip re-fetching.
type crawlState struct {
	users     []dataset.UserRecord
	games     []dataset.GameRecord
	groups    []dataset.GroupRecord
	ach       map[uint32][]dataset.AchievementRecord
	achDone   map[uint32]bool
	phaseDone [6]bool
}

func newCrawlState() *crawlState {
	return &crawlState{
		ach:     make(map[uint32][]dataset.AchievementRecord),
		achDone: make(map[uint32]bool),
	}
}

func (st *crawlState) apply(rec *journalRecord) {
	switch rec.Kind {
	case kindUser:
		if rec.User != nil {
			st.users = append(st.users, *rec.User)
		}
	case kindGame:
		if rec.Game != nil {
			st.games = append(st.games, *rec.Game)
		}
	case kindAch:
		st.ach[rec.AppID] = rec.Achievements
		st.achDone[rec.AppID] = true
	case kindGroup:
		if rec.Group != nil {
			st.groups = append(st.groups, *rec.Group)
		}
	case kindPhaseDone:
		if int(rec.Phase) < len(st.phaseDone) {
			st.phaseDone[rec.Phase] = true
		}
	}
}

const (
	segPrefix = "journal-"
	segSuffix = ".seg"
	// recHeaderSize prefixes every record: uint32 payload length +
	// uint32 CRC-32 (IEEE) of the payload, both big-endian.
	recHeaderSize = 8
	// defaultSegmentBytes rotates segments at 4 MiB.
	defaultSegmentBytes = 4 << 20
)

// journal is the append side. All methods are safe for concurrent use.
type journal struct {
	dir     string
	maxSeg  int64
	metrics *Metrics

	mu   sync.Mutex
	f    *os.File
	seq  int
	size int64
}

func segName(seq int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix)
}

func segSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil {
		return 0, false
	}
	return n, true
}

// openJournal replays every segment under dir (creating it if needed) and
// opens the last one for appending. A torn record at the very tail — a
// crash mid-append — is truncated away and replay succeeds; corruption
// anywhere else is an error, because data after it would silently vanish.
func openJournal(dir string, maxSeg int64, m *Metrics) (*journal, *crawlState, error) {
	if maxSeg <= 0 {
		maxSeg = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("crawler: journal dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("crawler: journal dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if n, ok := segSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)

	st := newCrawlState()
	j := &journal{dir: dir, maxSeg: maxSeg, metrics: m, seq: 1}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		path := filepath.Join(dir, segName(seq))
		valid, err := replaySegment(path, st, m)
		if err != nil {
			if !last {
				return nil, nil, fmt.Errorf("crawler: journal segment %s: %w", segName(seq), err)
			}
			// Torn tail in the final segment: drop the partial record and
			// resume appending right after the last whole one.
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, nil, fmt.Errorf("crawler: journal truncate %s: %w", segName(seq), terr)
			}
		}
		if last {
			j.seq = seq
			j.size = valid
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("crawler: journal open: %w", err)
	}
	j.f = f
	if m != nil {
		m.JournalSegments.Store(int64(len(seqs)))
		if len(seqs) == 0 {
			m.JournalSegments.Store(1)
		}
	}
	return j, st, nil
}

// replaySegment applies every whole record in the segment to st and
// returns the byte offset just past the last whole record. The error is
// non-nil when the segment ends in a partial or corrupt record.
func replaySegment(path string, st *crawlState, m *Metrics) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var (
		valid  int64
		header [recHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF {
				return valid, nil // clean end
			}
			return valid, fmt.Errorf("torn record header: %w", err)
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, fmt.Errorf("torn record payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid, errors.New("record checksum mismatch")
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return valid, fmt.Errorf("record decode: %w", err)
		}
		st.apply(&rec)
		valid += recHeaderSize + int64(length)
		if m != nil {
			m.JournalRecords.Add(1)
		}
	}
}

// append encodes one record, writes it to the active segment, and flushes
// it to the OS, rotating to a fresh segment first when the active one is
// full. One append touches exactly one segment.
func (j *journal) append(rec *journalRecord) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, recHeaderSize)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("crawler: journal encode: %w", err)
	}
	b := buf.Bytes()
	payload := b[recHeaderSize:]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	if j.size > 0 && j.size+int64(len(b)) > j.maxSeg {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("crawler: journal write: %w", err)
	}
	j.size += int64(len(b))
	if j.metrics != nil {
		j.metrics.JournalRecords.Add(1)
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and atomically
// switches appends to the next one.
func (j *journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("crawler: journal sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("crawler: journal close: %w", err)
	}
	j.seq++
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("crawler: journal rotate: %w", err)
	}
	j.f = f
	j.size = 0
	if j.metrics != nil {
		j.metrics.JournalSegments.Add(1)
	}
	return nil
}

// Position reports the active segment index and its byte size, for the
// progress log.
func (j *journal) Position() (seg int, offset int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.size
}

// Close seals the journal (idempotent).
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.f.Sync()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// Convenience appenders used by the crawl phases.

func (j *journal) appendUser(u *dataset.UserRecord) error {
	return j.append(&journalRecord{Kind: kindUser, User: u})
}

func (j *journal) appendGame(g *dataset.GameRecord) error {
	return j.append(&journalRecord{Kind: kindGame, Game: g})
}

func (j *journal) appendAch(appID uint32, ach []dataset.AchievementRecord) error {
	return j.append(&journalRecord{Kind: kindAch, AppID: appID, Achievements: ach})
}

func (j *journal) appendGroup(g *dataset.GroupRecord) error {
	return j.append(&journalRecord{Kind: kindGroup, Group: g})
}

func (j *journal) appendPhaseDone(phase uint8) error {
	return j.append(&journalRecord{Kind: kindPhaseDone, Phase: phase})
}
