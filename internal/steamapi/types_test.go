package steamapi

import (
	"encoding/json"
	"testing"
)

func TestPlayerSummariesWireShape(t *testing.T) {
	// A real-world-shaped payload must decode into our types.
	payload := `{"response":{"players":[{"steamid":"76561197961965701",
		"personaname":"gabe","profileurl":"https://steamcommunity.com/profiles/76561197961965701",
		"timecreated":1063378262,"personastate":0,"loccountrycode":"US"}]}}`
	var resp PlayerSummariesResponse
	if err := json.Unmarshal([]byte(payload), &resp); err != nil {
		t.Fatal(err)
	}
	p := resp.Response.Players[0]
	if p.SteamID != "76561197961965701" || p.LocCountryCode != "US" || p.TimeCreated != 1063378262 {
		t.Fatalf("decoded %+v", p)
	}
}

func TestOwnedGamesOmitsZeroTwoWeek(t *testing.T) {
	g := OwnedGame{AppID: 10, PlaytimeForever: 120}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"appid":10,"playtime_forever":120}` {
		t.Fatalf("zero playtime_2weeks not omitted: %s", b)
	}
}

func TestAppDetailsRoundTrip(t *testing.T) {
	payload := `{"10":{"success":true,"data":{"type":"game","name":"Counter-Strike",
		"is_free":false,"developers":["Valve"],"release_year":2000,
		"genres":[{"id":"1","description":"Action"}],
		"categories":[{"id":1,"description":"Multi-player"}],
		"price_overview":{"currency":"USD","final":999},
		"metacritic":{"score":88}}}}`
	var resp AppDetailsResponse
	if err := json.Unmarshal([]byte(payload), &resp); err != nil {
		t.Fatal(err)
	}
	entry := resp["10"]
	if !entry.Success || entry.Data == nil {
		t.Fatal("entry not decoded")
	}
	d := entry.Data
	if d.Name != "Counter-Strike" || d.PriceOverview.Final != 999 || d.Metacritic.Score != 88 {
		t.Fatalf("decoded %+v", d)
	}
	if d.Categories[0].ID != CategoryMultiplayer {
		t.Fatal("multiplayer category wrong")
	}
}

func TestFriendListDecode(t *testing.T) {
	payload := `{"friendslist":{"friends":[{"steamid":"76561197960265729",
		"relationship":"friend","friend_since":1234567890}]}}`
	var resp FriendListResponse
	if err := json.Unmarshal([]byte(payload), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.FriendsList.Friends[0].FriendSince != 1234567890 {
		t.Fatal("friend_since lost")
	}
}
