// Package steamapi defines the JSON wire format of the subset of the
// Steam Web API and storefront endpoints the paper's crawl used (§3.1):
//
//   - ISteamUser/GetPlayerSummaries/v0002 — profiles, up to 100 per call
//   - ISteamUser/GetFriendList/v0001      — friendships with timestamps
//   - IPlayerService/GetOwnedGames/v0001  — libraries with playtimes
//   - ISteamUser/GetUserGroupList/v0001   — group memberships
//   - ISteamUserStats/GetGlobalAchievementPercentagesForApp/v0002 (§9)
//   - ISteamApps/GetAppList/v0002         — the "unpublicized" app index
//   - storefront appdetails                — genres, price, type (Big
//     Picture traffic in the paper; a JSON storefront here)
//
// The shapes mirror the real API closely enough that a client written
// against these types would need only a base-URL change to crawl the real
// service.
package steamapi

// PlayerSummary is one profile in a GetPlayerSummaries response.
type PlayerSummary struct {
	SteamID     string `json:"steamid"`
	PersonaName string `json:"personaname"`
	ProfileURL  string `json:"profileurl"`
	TimeCreated int64  `json:"timecreated"`
	// PersonaState 0 = offline; the simulator reports everyone offline.
	PersonaState int `json:"personastate"`
	// LocCountryCode and LocCityID are present only for users who
	// self-report a location (10.7 % / 4.0 % per the paper).
	LocCountryCode string `json:"loccountrycode,omitempty"`
	LocCityID      string `json:"loccityid,omitempty"`
}

// PlayerSummariesResponse is the GetPlayerSummaries envelope.
type PlayerSummariesResponse struct {
	Response struct {
		Players []PlayerSummary `json:"players"`
	} `json:"response"`
}

// Friend is one entry of a GetFriendList response.
type Friend struct {
	SteamID      string `json:"steamid"`
	Relationship string `json:"relationship"`
	FriendSince  int64  `json:"friend_since"`
}

// FriendListResponse is the GetFriendList envelope.
type FriendListResponse struct {
	FriendsList struct {
		Friends []Friend `json:"friends"`
	} `json:"friendslist"`
}

// OwnedGame is one entry of a GetOwnedGames response. Playtimes are in
// minutes, exactly as the real API reports them.
type OwnedGame struct {
	AppID           uint32 `json:"appid"`
	PlaytimeForever int64  `json:"playtime_forever"`
	Playtime2Weeks  int32  `json:"playtime_2weeks,omitempty"`
}

// OwnedGamesResponse is the GetOwnedGames envelope.
type OwnedGamesResponse struct {
	Response struct {
		GameCount int         `json:"game_count"`
		Games     []OwnedGame `json:"games"`
	} `json:"response"`
}

// UserGroup is one entry of a GetUserGroupList response.
type UserGroup struct {
	GID string `json:"gid"`
}

// UserGroupListResponse is the GetUserGroupList envelope.
type UserGroupListResponse struct {
	Response struct {
		Success bool        `json:"success"`
		Groups  []UserGroup `json:"groups"`
	} `json:"response"`
}

// AchievementPercentage is one global completion entry (§9).
type AchievementPercentage struct {
	Name    string  `json:"name"`
	Percent float64 `json:"percent"`
}

// AchievementPercentagesResponse is the
// GetGlobalAchievementPercentagesForApp envelope.
type AchievementPercentagesResponse struct {
	AchievementPercentages struct {
		Achievements []AchievementPercentage `json:"achievements"`
	} `json:"achievementpercentages"`
}

// App is one entry of the GetAppList index.
type App struct {
	AppID uint32 `json:"appid"`
	Name  string `json:"name"`
}

// AppListResponse is the GetAppList envelope.
type AppListResponse struct {
	AppList struct {
		Apps []App `json:"apps"`
	} `json:"applist"`
}

// AppDetails is the storefront data for one product.
type AppDetails struct {
	Type        string   `json:"type"`
	Name        string   `json:"name"`
	IsFree      bool     `json:"is_free"`
	Developers  []string `json:"developers"`
	ReleaseYear int      `json:"release_year"`
	Genres      []struct {
		ID          string `json:"id"`
		Description string `json:"description"`
	} `json:"genres"`
	Categories []struct {
		ID          int    `json:"id"`
		Description string `json:"description"`
	} `json:"categories"`
	PriceOverview *struct {
		Currency string `json:"currency"`
		Final    int64  `json:"final"` // cents
	} `json:"price_overview,omitempty"`
	Metacritic *struct {
		Score int `json:"score"`
	} `json:"metacritic,omitempty"`
}

// AppDetailsEntry wraps AppDetails with the storefront success flag.
type AppDetailsEntry struct {
	Success bool        `json:"success"`
	Data    *AppDetails `json:"data,omitempty"`
}

// AppDetailsResponse maps appid (as a decimal string) to its entry,
// mirroring the storefront's odd top-level-keyed-by-appid shape.
type AppDetailsResponse map[string]AppDetailsEntry

// CategoryMultiplayer is the storefront category id that marks a
// multiplayer component.
const CategoryMultiplayer = 1

// PlayerAchievement is one entry of a GetPlayerAchievements response.
type PlayerAchievement struct {
	APIName  string `json:"apiname"`
	Achieved int    `json:"achieved"`
}

// PlayerAchievementsResponse is the GetPlayerAchievements envelope — the
// §9 "individual players' achievement statistics" the real 2016 API did
// not expose for bulk collection; the simulator implements it as the
// paper's stated future work.
type PlayerAchievementsResponse struct {
	PlayerStats struct {
		SteamID      string              `json:"steamid"`
		GameName     string              `json:"gameName"`
		Achievements []PlayerAchievement `json:"achievements"`
		Success      bool                `json:"success"`
	} `json:"playerstats"`
}

// GroupPage is the community group page the crawler fetches to categorize
// groups — the §4.2 "manual investigation of group pages" step, which the
// analysis automates by classifying the page text.
type GroupPage struct {
	GID         string `json:"gid"`
	Name        string `json:"name"`
	Summary     string `json:"summary"`
	MemberCount int    `json:"member_count"`
}

// ErrorResponse is the body returned with non-200 statuses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MaxSummariesPerCall is the profile batch limit (§3.1: "up to 100 user
// profiles at once").
const MaxSummariesPerCall = 100
