// Package apiserver serves a synthetic universe over HTTP speaking the
// Steam Web API wire format, so the crawler exercises the same code paths
// a crawl of the real service would: API-key auth, per-key rate limits
// with 429 responses, the 100-profile batch endpoint, per-user endpoints,
// the storefront, and optional fault injection for resilience tests.
package apiserver

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"steamstudy/internal/obs"
	"steamstudy/internal/ratelimit"
	"steamstudy/internal/simworld"
	"steamstudy/internal/steamapi"
	"steamstudy/internal/steamid"
)

// Config configures the simulated service.
type Config struct {
	// APIKeys lists accepted keys; empty means no auth required.
	APIKeys []string
	// RatePerSecond and Burst bound each key's request rate
	// (0 disables limiting).
	RatePerSecond float64
	Burst         int
	// FaultRate injects HTTP 500s on roughly this fraction of requests
	// (deterministic evenly-spaced sequence, for crawler retry tests).
	// For anything richer use Faults.
	FaultRate float64
	// Faults composes per-endpoint fault rates across the full taxonomy
	// (500s, 503s, resets, stalls, truncations, bad JSON) plus scheduled
	// outage windows, all from one seeded RNG. May be combined with
	// FaultRate; the flat 500s are checked first.
	Faults *FaultProfile
	// Registry receives the server's metrics (counters, the per-endpoint
	// latency histogram, the tracked-key gauge). Nil means the server
	// creates a private one; either way /metrics serves it.
	Registry *obs.Registry
	// MaxTrackedKeys caps the per-API-key limiter map: beyond this many
	// distinct keys the least-recently-seen limiter is evicted, so a
	// client spraying fabricated keys cannot grow server memory without
	// bound (default 1024).
	MaxTrackedKeys int
}

// Metrics counts server activity (atomic; safe to read live). The fields
// are obs counters registered with the server's registry, so the same
// values back both this struct's Snapshot() and the /metrics endpoint.
type Metrics struct {
	Requests     obs.Counter
	RateLimited  obs.Counter
	Unauthorized obs.Counter
	Faults       obs.Counter // total injected faults of every class
	NotFound     obs.Counter

	// Per-class fault counters (all also counted in Faults).
	Faults500   obs.Counter
	Faults503   obs.Counter
	Resets      obs.Counter
	Stalls      obs.Counter
	Truncations obs.Counter
	Malformed   obs.Counter
	WrongJSON   obs.Counter
	OutageDrops obs.Counter
}

// MetricsSnapshot is a plain-value copy of Metrics at one instant.
type MetricsSnapshot struct {
	Requests     int64
	RateLimited  int64
	Unauthorized int64
	Faults       int64
	NotFound     int64
	Faults500    int64
	Faults503    int64
	Resets       int64
	Stalls       int64
	Truncations  int64
	Malformed    int64
	WrongJSON    int64
	OutageDrops  int64
}

// Snapshot copies every counter at one instant, for logging and tests.
func (m *Metrics) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	obs.FillSnapshot(m, &s)
	return s
}

// String renders the snapshot as a one-line health summary.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("requests=%d 429=%d 401=%d 404=%d faults=%d (500=%d 503=%d reset=%d stall=%d trunc=%d badjson=%d wrongjson=%d outage=%d)",
		s.Requests, s.RateLimited, s.Unauthorized, s.NotFound, s.Faults,
		s.Faults500, s.Faults503, s.Resets, s.Stalls, s.Truncations,
		s.Malformed, s.WrongJSON, s.OutageDrops)
}

// Server implements http.Handler for the simulated Steam Web API.
type Server struct {
	cfg Config
	u   *simworld.Universe

	byID    map[steamid.ID]int32 // steamid -> user index
	byAppID map[uint32]int32     // appid -> game index
	groupID map[uint64]int32     // gid -> group index

	mu       sync.Mutex
	limiters map[string]*list.Element // key -> *limiterEntry element
	lru      *list.List               // front = most recently seen key
	maxKeys  int
	faultSeq uint64
	faults   *faultInjector

	adjOnce sync.Once
	adj     [][]adjEntry

	Metrics Metrics

	obs     *obs.Registry
	health  *obs.Health
	latency *obs.Histogram

	mux *http.ServeMux
}

// limiterEntry pairs a key with its limiter inside the LRU list.
type limiterEntry struct {
	key string
	lim *ratelimit.Limiter
}

// New builds a server over the universe.
func New(u *simworld.Universe, cfg Config) *Server {
	if cfg.MaxTrackedKeys <= 0 {
		cfg.MaxTrackedKeys = 1024
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		u:        u,
		byID:     make(map[steamid.ID]int32, len(u.Users)),
		byAppID:  make(map[uint32]int32, len(u.Games)),
		groupID:  make(map[uint64]int32, len(u.Groups)),
		limiters: make(map[string]*list.Element),
		lru:      list.New(),
		maxKeys:  cfg.MaxTrackedKeys,
		obs:      reg,
		health:   obs.NewHealth(),
	}
	reg.RegisterCounters("apiserver_", &s.Metrics)
	reg.GaugeFunc("apiserver_limiter_keys", func() float64 {
		return float64(s.TrackedKeys())
	})
	s.latency = reg.Histogram("apiserver_request_seconds", obs.DefLatencyBuckets())
	s.health.Register("universe", func() error {
		if len(s.u.Users) == 0 {
			return fmt.Errorf("universe has no users")
		}
		return nil
	})
	for i := range u.Users {
		s.byID[u.Users[i].ID] = int32(i)
	}
	for i := range u.Games {
		s.byAppID[u.Games[i].AppID] = int32(i)
	}
	for i := range u.Groups {
		s.groupID[u.Groups[i].ID] = int32(i)
	}
	if cfg.Faults != nil {
		s.faults = newFaultInjector(*cfg.Faults)
	}
	mux := http.NewServeMux()
	for pattern, h := range map[string]http.HandlerFunc{
		"/ISteamUser/GetPlayerSummaries/v0002/":                         s.handlePlayerSummaries,
		"/ISteamUser/GetFriendList/v0001/":                              s.handleFriendList,
		"/IPlayerService/GetOwnedGames/v0001/":                          s.handleOwnedGames,
		"/ISteamUser/GetUserGroupList/v0001/":                           s.handleUserGroupList,
		"/ISteamUserStats/GetGlobalAchievementPercentagesForApp/v0002/": s.handleAchievements,
		"/ISteamApps/GetAppList/v0002/":                                 s.handleAppList,
		"/store/appdetails":                                             s.handleAppDetails,
		"/community/group":                                              s.handleGroupPage,
		"/ISteamUserStats/GetPlayerAchievements/v0001/":                 s.handlePlayerAchievements,
	} {
		mux.HandleFunc(pattern, Chain(h, s.Stack(pattern)...))
	}
	// The observability surface rides on the same mux: the admin
	// endpoints are exact-match patterns, so they never shadow the API.
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/healthz", s.health.Handler())
	s.mux = mux
	return s
}

// Obs returns the server's metrics registry (the one /metrics serves).
func (s *Server) Obs() *obs.Registry { return s.obs }

// Health returns the server's health check set (the one /healthz
// evaluates); callers may register additional checks.
func (s *Server) Health() *obs.Health { return s.health }

// handlePlayerAchievements serves per-player achievement unlocks — the
// §9 future-work endpoint (the 2016 API exposed only global percentages).
func (s *Server) handlePlayerAchievements(w http.ResponseWriter, r *http.Request) {
	idx, ok := s.userFor(w, r)
	if !ok {
		return
	}
	raw := r.URL.Query().Get("appid")
	appID, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid appid")
		return
	}
	gi, ok := s.byAppID[uint32(appID)]
	if !ok {
		s.Metrics.NotFound.Add(1)
		writeError(w, http.StatusNotFound, "no such app")
		return
	}
	unlocked := s.u.PlayerAchievements(int(idx), int(gi))
	var resp steamapi.PlayerAchievementsResponse
	resp.PlayerStats.SteamID = s.u.Users[idx].ID.String()
	resp.PlayerStats.GameName = s.u.Games[gi].Name
	resp.PlayerStats.Success = true
	for k, a := range s.u.Games[gi].Achievements {
		achieved := 0
		if k < unlocked {
			achieved = 1
		}
		resp.PlayerStats.Achievements = append(resp.PlayerStats.Achievements,
			steamapi.PlayerAchievement{APIName: a.Name, Achieved: achieved})
	}
	writeJSON(w, resp)
}

// handleGroupPage mimics the community group page the paper's authors
// inspected manually to type the top-250 groups (§4.2): name, member
// count, and the page text from which the category is inferred.
func (s *Server) handleGroupPage(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("gid")
	gid, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid gid")
		return
	}
	gi, ok := s.groupID[gid]
	if !ok {
		s.Metrics.NotFound.Add(1)
		writeError(w, http.StatusNotFound, "no such group")
		return
	}
	g := &s.u.Groups[gi]
	writeJSON(w, steamapi.GroupPage{
		GID:         raw,
		Name:        g.Name,
		Summary:     fmt.Sprintf("A %s community on Steam.", g.Type),
		MemberCount: len(g.Members),
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) validKey(key string) bool {
	for _, k := range s.cfg.APIKeys {
		if key == k {
			return true
		}
	}
	return false
}

// limiterFor returns the key's limiter, creating it on first sight. The
// map is LRU-capped at MaxTrackedKeys: when a new key would exceed the
// cap, the least-recently-seen key's limiter is evicted. Eviction resets
// that key's token bucket, which only matters to keys idle long enough to
// fall off the end of the list — by then the bucket would have refilled
// anyway.
func (s *Server) limiterFor(key string) *ratelimit.Limiter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.limiters[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*limiterEntry).lim
	}
	burst := s.cfg.Burst
	if burst <= 0 {
		burst = int(s.cfg.RatePerSecond) + 1
	}
	l := ratelimit.New(s.cfg.RatePerSecond, burst)
	s.limiters[key] = s.lru.PushFront(&limiterEntry{key: key, lim: l})
	for len(s.limiters) > s.maxKeys {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.limiters, back.Value.(*limiterEntry).key)
	}
	return l
}

// TrackedKeys reports how many per-key limiters are live (the
// apiserver_limiter_keys gauge; never exceeds MaxTrackedKeys).
func (s *Server) TrackedKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.limiters)
}

// nextFault deterministically spaces faults at 1/FaultRate requests, which
// keeps retry tests reproducible without sharing an RNG across requests.
func (s *Server) nextFault() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faultSeq++
	period := uint64(1 / s.cfg.FaultRate)
	if period == 0 {
		period = 1
	}
	return s.faultSeq%period == 0
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(steamapi.ErrorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// userFor resolves the steamid query parameter; writes the error response
// itself when resolution fails.
func (s *Server) userFor(w http.ResponseWriter, r *http.Request) (int32, bool) {
	raw := r.URL.Query().Get("steamid")
	id, err := steamid.Parse(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid steamid")
		return 0, false
	}
	idx, ok := s.byID[id]
	if !ok {
		s.Metrics.NotFound.Add(1)
		writeError(w, http.StatusNotFound, "no such account")
		return 0, false
	}
	return idx, true
}

func (s *Server) handlePlayerSummaries(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("steamids")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "steamids required")
		return
	}
	parts := strings.Split(raw, ",")
	if len(parts) > steamapi.MaxSummariesPerCall {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("at most %d steamids per call", steamapi.MaxSummariesPerCall))
		return
	}
	var resp steamapi.PlayerSummariesResponse
	for _, p := range parts {
		id, err := steamid.Parse(strings.TrimSpace(p))
		if err != nil {
			continue // invalid IDs are silently skipped, like the real API
		}
		idx, ok := s.byID[id]
		if !ok {
			continue // unassigned IDs simply do not appear
		}
		user := &s.u.Users[idx]
		ps := steamapi.PlayerSummary{
			SteamID:        user.ID.String(),
			PersonaName:    fmt.Sprintf("player_%d", user.ID.AccountID()),
			ProfileURL:     "https://steamcommunity.com/profiles/" + user.ID.String(),
			TimeCreated:    user.Created,
			LocCountryCode: user.Country,
			LocCityID:      user.City,
		}
		resp.Response.Players = append(resp.Response.Players, ps)
	}
	writeJSON(w, resp)
}

func (s *Server) handleFriendList(w http.ResponseWriter, r *http.Request) {
	idx, ok := s.userFor(w, r)
	if !ok {
		return
	}
	var resp steamapi.FriendListResponse
	resp.FriendsList.Friends = []steamapi.Friend{}
	// The CSR index is not stored server-side; scanning the edge list per
	// request would be quadratic over a crawl, so the adjacency is built
	// lazily once.
	for _, f := range s.adjacency()[idx] {
		resp.FriendsList.Friends = append(resp.FriendsList.Friends, steamapi.Friend{
			SteamID:      s.u.Users[f.other].ID.String(),
			Relationship: "friend",
			FriendSince:  f.since,
		})
	}
	writeJSON(w, resp)
}

type adjEntry struct {
	other int32
	since int64
}

func (s *Server) adjacency() [][]adjEntry {
	s.adjOnce.Do(func() {
		adj := make([][]adjEntry, len(s.u.Users))
		for _, f := range s.u.Friendships {
			adj[f.A] = append(adj[f.A], adjEntry{other: f.B, since: f.Since})
			adj[f.B] = append(adj[f.B], adjEntry{other: f.A, since: f.Since})
		}
		s.adj = adj
	})
	return s.adj
}

func (s *Server) handleOwnedGames(w http.ResponseWriter, r *http.Request) {
	idx, ok := s.userFor(w, r)
	if !ok {
		return
	}
	user := &s.u.Users[idx]
	var resp steamapi.OwnedGamesResponse
	resp.Response.GameCount = len(user.Library)
	resp.Response.Games = make([]steamapi.OwnedGame, 0, len(user.Library))
	for _, g := range user.Library {
		resp.Response.Games = append(resp.Response.Games, steamapi.OwnedGame{
			AppID:           s.u.Games[g.GameIdx].AppID,
			PlaytimeForever: g.TotalMinutes,
			Playtime2Weeks:  g.TwoWeekMinutes,
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleUserGroupList(w http.ResponseWriter, r *http.Request) {
	idx, ok := s.userFor(w, r)
	if !ok {
		return
	}
	user := &s.u.Users[idx]
	var resp steamapi.UserGroupListResponse
	resp.Response.Success = true
	resp.Response.Groups = make([]steamapi.UserGroup, 0, len(user.Groups))
	for _, g := range user.Groups {
		resp.Response.Groups = append(resp.Response.Groups, steamapi.UserGroup{
			GID: strconv.FormatUint(s.u.Groups[g].ID, 10),
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleAchievements(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("gameid")
	appID, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid gameid")
		return
	}
	gi, ok := s.byAppID[uint32(appID)]
	if !ok {
		s.Metrics.NotFound.Add(1)
		writeError(w, http.StatusNotFound, "no such app")
		return
	}
	var resp steamapi.AchievementPercentagesResponse
	resp.AchievementPercentages.Achievements = []steamapi.AchievementPercentage{}
	for _, a := range s.u.Games[gi].Achievements {
		resp.AchievementPercentages.Achievements = append(
			resp.AchievementPercentages.Achievements,
			steamapi.AchievementPercentage{Name: a.Name, Percent: a.GlobalPercent},
		)
	}
	writeJSON(w, resp)
}

func (s *Server) handleAppList(w http.ResponseWriter, r *http.Request) {
	var resp steamapi.AppListResponse
	resp.AppList.Apps = make([]steamapi.App, 0, len(s.u.Games))
	for i := range s.u.Games {
		resp.AppList.Apps = append(resp.AppList.Apps, steamapi.App{
			AppID: s.u.Games[i].AppID,
			Name:  s.u.Games[i].Name,
		})
	}
	writeJSON(w, resp)
}

func (s *Server) handleAppDetails(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("appids")
	appID, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid appids")
		return
	}
	resp := steamapi.AppDetailsResponse{}
	gi, ok := s.byAppID[uint32(appID)]
	if !ok {
		resp[raw] = steamapi.AppDetailsEntry{Success: false}
		writeJSON(w, resp)
		return
	}
	g := &s.u.Games[gi]
	d := &steamapi.AppDetails{
		Type:        g.Type.String(),
		Name:        g.Name,
		IsFree:      g.PriceCents == 0,
		Developers:  []string{g.Developer},
		ReleaseYear: g.ReleaseYear,
	}
	for b, name := range simworld.GenreNames {
		if g.Genres.Has(simworld.Genre(1 << b)) {
			d.Genres = append(d.Genres, struct {
				ID          string `json:"id"`
				Description string `json:"description"`
			}{ID: strconv.Itoa(b + 1), Description: name})
		}
	}
	if g.Multiplayer {
		d.Categories = append(d.Categories, struct {
			ID          int    `json:"id"`
			Description string `json:"description"`
		}{ID: steamapi.CategoryMultiplayer, Description: "Multi-player"})
	}
	if g.PriceCents > 0 {
		d.PriceOverview = &struct {
			Currency string `json:"currency"`
			Final    int64  `json:"final"`
		}{Currency: "USD", Final: g.PriceCents}
	}
	if g.Metacritic > 0 {
		d.Metacritic = &struct {
			Score int `json:"score"`
		}{Score: g.Metacritic}
	}
	resp[raw] = steamapi.AppDetailsEntry{Success: true, Data: d}
	writeJSON(w, resp)
}
