package apiserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"steamstudy/internal/obs"
)

// TestMetricsEndpoint checks the /metrics JSON shape and that its
// counters move monotonically under load.
func TestMetricsEndpoint(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})

	scrape := func() obs.Snapshot {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("/metrics content type %q", ct)
		}
		var snap obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return snap
	}

	before := scrape()
	const n = 25
	pattern := "/IPlayerService/GetOwnedGames/v0001/"
	url := ts.URL + pattern + "?steamid=" + u.Users[0].ID.String()
	for i := 0; i < n; i++ {
		if code := get(t, url, nil); code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	after := scrape()

	if got := after.Counters["apiserver_requests"] - before.Counters["apiserver_requests"]; got < n {
		t.Fatalf("apiserver_requests rose by %d, want >= %d", got, n)
	}
	key := "apiserver_endpoint_requests:" + pattern
	if got := after.Counters[key] - before.Counters[key]; got != n {
		t.Fatalf("%s rose by %d, want %d", key, got, n)
	}
	h, ok := after.Histograms["apiserver_request_seconds"]
	if !ok {
		t.Fatal("latency histogram missing from /metrics")
	}
	if h.Count < n {
		t.Fatalf("latency histogram count %d, want >= %d", h.Count, n)
	}
	if _, ok := after.Gauges["apiserver_limiter_keys"]; !ok {
		t.Fatal("limiter-keys gauge missing from /metrics")
	}
	// Monotonic: no counter moved backwards.
	for name, v := range before.Counters {
		if after.Counters[name] < v {
			t.Fatalf("counter %s went backwards: %d -> %d", name, v, after.Counters[name])
		}
	}
}

// TestHealthzTransitions drives /healthz from 200 to 503 and back via an
// extra registered check.
func TestHealthzTransitions(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	status := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := status(); code != 200 {
		t.Fatalf("fresh server /healthz = %d", code)
	}
	var broken atomic.Bool
	broken.Store(true)
	s.Health().Register("downstream", func() error {
		if broken.Load() {
			return fmt.Errorf("connection refused")
		}
		return nil
	})
	if code := status(); code != 503 {
		t.Fatalf("/healthz with failing check = %d, want 503", code)
	}
	broken.Store(false)
	if code := status(); code != 200 {
		t.Fatalf("/healthz after recovery = %d, want 200", code)
	}
}

// TestObserveCountsRejectedRequests pins the middleware order: Observe is
// outermost, so requests the rate limiter turns away still land in the
// request counter and latency histogram.
func TestObserveCountsRejectedRequests(t *testing.T) {
	u := universe(t)
	s, ts := newTestServer(t, Config{RatePerSecond: 0.001, Burst: 2})
	url := ts.URL + "/IPlayerService/GetOwnedGames/v0001/?steamid=" + u.Users[0].ID.String()

	const n = 10
	var limited int
	for i := 0; i < n; i++ {
		if code := get(t, url, nil); code == http.StatusTooManyRequests {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("burst of 2 never rate-limited 10 requests")
	}
	snap := s.Metrics.Snapshot()
	if snap.Requests != n {
		t.Fatalf("Requests = %d, want %d (rejected requests must still count)", snap.Requests, n)
	}
	if snap.RateLimited != int64(limited) {
		t.Fatalf("RateLimited = %d, want %d", snap.RateLimited, limited)
	}
	lat := s.Obs().Snapshot().Histograms["apiserver_request_seconds"]
	if lat.Count != n {
		t.Fatalf("latency count = %d, want %d (rejected requests must still be timed)", lat.Count, n)
	}
}

// TestAuthBeforeRateLimit pins that an unauthorized request is refused by
// Auth before it can consume rate-limit tokens.
func TestAuthBeforeRateLimit(t *testing.T) {
	u := universe(t)
	s, ts := newTestServer(t, Config{APIKeys: []string{"GOOD"}, RatePerSecond: 1000})
	url := ts.URL + "/IPlayerService/GetOwnedGames/v0001/?steamid=" + u.Users[0].ID.String()

	if code := get(t, url+"&key=BAD", nil); code != http.StatusUnauthorized {
		t.Fatalf("bad key: status %d", code)
	}
	if s.TrackedKeys() != 0 {
		t.Fatalf("unauthorized request created a limiter (%d tracked)", s.TrackedKeys())
	}
	if code := get(t, url+"&key=GOOD", nil); code != 200 {
		t.Fatalf("good key: status %d", code)
	}
	if s.TrackedKeys() != 1 {
		t.Fatalf("tracked keys = %d, want 1", s.TrackedKeys())
	}
}

// TestPartialStack assembles a chain with only fault injection — no auth,
// no rate limit, no metrics — which the old monolithic wrapper could not
// express.
func TestPartialStack(t *testing.T) {
	s := New(universe(t), Config{FaultRate: 1}) // every request faults
	h := Chain(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}, s.FaultInjection("/test"))

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/test", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("fault stage alone: status %d, want 500", rec.Code)
	}
	// No other stage ran: nothing counted, nothing limited.
	if got := s.Metrics.Requests.Load(); got != 0 {
		t.Fatalf("Requests = %d without Observe in the chain", got)
	}
	if got := s.Metrics.Faults.Load(); got != 1 {
		t.Fatalf("Faults = %d, want 1", got)
	}

	// And a chain of zero stages is just the handler.
	plain := Chain(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	rec = httptest.NewRecorder()
	plain(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("empty chain: status %d", rec.Code)
	}
}

// TestLimiterKeyCap hammers the server with rotating fabricated API keys
// and checks the limiter map stays at the configured maxKeys, with the gauge
// agreeing, while a hot key's limiter survives the churn.
func TestLimiterKeyCap(t *testing.T) {
	u := universe(t)
	const maxKeys = 32
	s, ts := newTestServer(t, Config{RatePerSecond: 1000, MaxTrackedKeys: maxKeys})
	url := ts.URL + "/IPlayerService/GetOwnedGames/v0001/?steamid=" + u.Users[0].ID.String()

	for i := 0; i < 4*maxKeys; i++ {
		// The hot key is re-touched every iteration, so LRU keeps it.
		if code := get(t, url+"&key=hot", nil); code != 200 {
			t.Fatalf("hot key: status %d", code)
		}
		if code := get(t, fmt.Sprintf("%s&key=burner-%d", url, i), nil); code != 200 {
			t.Fatalf("burner key %d: status %d", i, code)
		}
		if got := s.TrackedKeys(); got > maxKeys {
			t.Fatalf("tracked keys %d exceeds maxKeys %d after %d rotations", got, maxKeys, i)
		}
	}
	if got := s.TrackedKeys(); got != maxKeys {
		t.Fatalf("tracked keys %d, want exactly maxKeys %d after churn", got, maxKeys)
	}
	if g := s.Obs().Snapshot().Gauges["apiserver_limiter_keys"]; g != maxKeys {
		t.Fatalf("limiter-keys gauge %v, want %d", g, maxKeys)
	}
	// The hot key was most-recently-used throughout, so it must still be
	// tracked: touching it must not evict anything (count stays at maxKeys).
	s.limiterFor("hot")
	if got := s.TrackedKeys(); got != maxKeys {
		t.Fatalf("hot key was evicted despite constant use (tracked=%d)", got)
	}
}

// TestSharedRegistry verifies a caller-provided registry receives the
// server's metrics (the embedding pattern the crawler e2e test uses).
func TestSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	u := universe(t)
	_, ts := newTestServer(t, Config{Registry: reg})
	url := ts.URL + "/IPlayerService/GetOwnedGames/v0001/?steamid=" + u.Users[0].ID.String()
	if code := get(t, url, nil); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got := reg.Snapshot().Counters["apiserver_requests"]; got != 1 {
		t.Fatalf("shared registry apiserver_requests = %d, want 1", got)
	}
}
