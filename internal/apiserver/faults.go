package apiserver

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"
)

// FaultClass identifies one injectable failure mode. The taxonomy models
// everything a six-month crawl of a flaky public API observes: hard
// errors, backpressure, dropped connections, stalls, torn responses, and
// payloads that are broken — or worse, well-formed but wrong.
type FaultClass int

const (
	// FaultNone means the request is served normally.
	FaultNone FaultClass = iota
	// Fault500 answers with HTTP 500.
	Fault500
	// Fault503 answers with HTTP 503 plus a Retry-After header.
	Fault503
	// FaultReset hijacks the connection and closes it without a response
	// (the client sees a reset/EOF mid-request).
	FaultReset
	// FaultStall delays the response by the configured duration before
	// serving it normally — long enough to trip a per-request timeout.
	FaultStall
	// FaultTruncate serves the real response but cuts the body in half
	// while declaring the full Content-Length, so the client sees an
	// unexpected EOF mid-body.
	FaultTruncate
	// FaultMalformedJSON serves HTTP 200 with a body that is not JSON.
	FaultMalformedJSON
	// FaultWrongJSON serves HTTP 200 with valid JSON of the wrong shape —
	// the nastiest class, caught only by strict decoding.
	FaultWrongJSON
	// FaultOutage is a 503 issued because the service is inside a
	// scheduled outage window.
	FaultOutage
)

// String names the class for logs and test failures.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case Fault500:
		return "500"
	case Fault503:
		return "503"
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultMalformedJSON:
		return "malformed-json"
	case FaultWrongJSON:
		return "wrong-json"
	case FaultOutage:
		return "outage"
	}
	return fmt.Sprintf("FaultClass(%d)", int(c))
}

// FaultSpec gives the per-request injection probability of each fault
// class for one endpoint. Probabilities are independent slices of a
// single uniform draw, so their sum must stay ≤ 1.
type FaultSpec struct {
	Error500      float64 // HTTP 500
	Unavail503    float64 // HTTP 503 + Retry-After
	ConnReset     float64 // hijack + close, no response
	Stall         float64 // delay StallFor before responding
	Truncate      float64 // full Content-Length, half the body
	MalformedJSON float64 // HTTP 200, non-JSON body
	WrongJSON     float64 // HTTP 200, valid JSON, wrong shape

	// RetryAfter is advertised on injected 503s (default 1s).
	RetryAfter time.Duration
	// StallFor is the FaultStall delay (default 2s).
	StallFor time.Duration
}

func (s FaultSpec) total() float64 {
	return s.Error500 + s.Unavail503 + s.ConnReset + s.Stall +
		s.Truncate + s.MalformedJSON + s.WrongJSON
}

// FaultProfile composes per-endpoint fault rates with scheduled outage
// windows. All randomness flows from a single seeded RNG, so a serial
// request stream reproduces the exact same fault sequence every run.
type FaultProfile struct {
	// Seed drives the deterministic RNG (0 behaves like 1).
	Seed int64
	// Default applies to every endpoint without an explicit entry.
	Default FaultSpec
	// Endpoints overrides Default per mux pattern (the full registered
	// path, e.g. "/ISteamUser/GetFriendList/v0001/").
	Endpoints map[string]FaultSpec
	// OutageEvery schedules an outage window after every N non-outage
	// requests (0 disables outages).
	OutageEvery int
	// OutageLen is how many consecutive requests each window rejects
	// with 503 (default 1 when OutageEvery is set).
	OutageLen int
	// OutageRetryAfter is advertised during outage windows (default 1s).
	OutageRetryAfter time.Duration
}

// faultInjector is the runtime state behind a FaultProfile.
type faultInjector struct {
	mu          sync.Mutex
	p           FaultProfile
	rng         *rand.Rand
	sinceOutage int
	outageLeft  int
}

func newFaultInjector(p FaultProfile) *faultInjector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	if p.OutageEvery > 0 && p.OutageLen <= 0 {
		p.OutageLen = 1
	}
	return &faultInjector{p: p, rng: rand.New(rand.NewSource(seed))}
}

// decide draws the fault (if any) for the next request on endpoint.
// Exactly one uniform draw is consumed per non-outage request, so the
// sequence of decisions depends only on the seed and the request order.
func (fi *faultInjector) decide(endpoint string) (FaultClass, FaultSpec) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	spec, ok := fi.p.Endpoints[endpoint]
	if !ok {
		spec = fi.p.Default
	}
	if spec.RetryAfter <= 0 {
		spec.RetryAfter = time.Second
	}
	if spec.StallFor <= 0 {
		spec.StallFor = 2 * time.Second
	}
	if fi.outageLeft > 0 {
		fi.outageLeft--
		if fi.p.OutageRetryAfter > 0 {
			spec.RetryAfter = fi.p.OutageRetryAfter
		}
		return FaultOutage, spec
	}
	if fi.p.OutageEvery > 0 {
		fi.sinceOutage++
		if fi.sinceOutage >= fi.p.OutageEvery {
			fi.sinceOutage = 0
			fi.outageLeft = fi.p.OutageLen - 1
			if fi.p.OutageRetryAfter > 0 {
				spec.RetryAfter = fi.p.OutageRetryAfter
			}
			return FaultOutage, spec
		}
	}
	u := fi.rng.Float64()
	for _, c := range []struct {
		class FaultClass
		p     float64
	}{
		{Fault500, spec.Error500},
		{Fault503, spec.Unavail503},
		{FaultReset, spec.ConnReset},
		{FaultStall, spec.Stall},
		{FaultTruncate, spec.Truncate},
		{FaultMalformedJSON, spec.MalformedJSON},
		{FaultWrongJSON, spec.WrongJSON},
	} {
		if u < c.p {
			return c.class, spec
		}
		u -= c.p
	}
	return FaultNone, spec
}

// inject executes the decided fault. It returns true when the fault fully
// handled the request; FaultStall returns false after its delay so the
// wrapped handler still serves the (late) response.
func (s *Server) inject(w http.ResponseWriter, r *http.Request, class FaultClass, spec FaultSpec, h http.HandlerFunc) bool {
	switch class {
	case Fault500:
		s.Metrics.Faults500.Add(1)
		writeError(w, http.StatusInternalServerError, "injected fault")
	case Fault503, FaultOutage:
		if class == FaultOutage {
			s.Metrics.OutageDrops.Add(1)
		} else {
			s.Metrics.Faults503.Add(1)
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(spec.RetryAfter/time.Second)))
		writeError(w, http.StatusServiceUnavailable, "service unavailable")
	case FaultReset:
		s.Metrics.Resets.Add(1)
		hj, ok := w.(http.Hijacker)
		if !ok {
			// Fall back to a bare 500 if the writer cannot be hijacked.
			writeError(w, http.StatusInternalServerError, "injected fault")
			return true
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			return true
		}
		// SO_LINGER 0 turns the close into a TCP RST where supported; a
		// plain close (FIN before any response bytes) is equivalent from
		// the client's point of view.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		conn.Close()
	case FaultStall:
		s.Metrics.Stalls.Add(1)
		select {
		case <-time.After(spec.StallFor):
		case <-r.Context().Done():
			// The client gave up; no point serving the body.
			return true
		}
		return false
	case FaultTruncate:
		s.Metrics.Truncations.Add(1)
		rec := httptest.NewRecorder()
		h(rec, r)
		body := rec.Body.Bytes()
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		// Declare the full length, deliver half: the handler returns with
		// the response short, so net/http closes the connection and the
		// client sees an unexpected EOF mid-body.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.Code)
		w.Write(body[:len(body)/2])
	case FaultMalformedJSON:
		s.Metrics.Malformed.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"response":{"players":[{"steamid":`))
	case FaultWrongJSON:
		s.Metrics.WrongJSON.Add(1)
		w.Header().Set("Content-Type", "application/json")
		// Valid JSON, wrong shape. The unknown field appears both at the
		// top level (caught when decoding struct envelopes) and inside the
		// value (caught when decoding map envelopes whose values are
		// structs), so strict clients reject it on every endpoint.
		w.Write([]byte(`{"glitch":{"glitch":true}}`))
	default:
		return false
	}
	return true
}
