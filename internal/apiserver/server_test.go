package apiserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"steamstudy/internal/simworld"
	"steamstudy/internal/steamapi"
)

var (
	testOnce sync.Once
	testU    *simworld.Universe
)

func universe(t *testing.T) *simworld.Universe {
	t.Helper()
	testOnce.Do(func() {
		cfg := simworld.DefaultConfig(3000)
		cfg.CatalogSize = 300
		testU = simworld.MustGenerate(cfg, 99)
	})
	return testU
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(universe(t), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestPlayerSummariesBatch(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	ids := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		ids = append(ids, u.Users[i].ID.String())
	}
	var resp steamapi.PlayerSummariesResponse
	code := get(t, ts.URL+"/ISteamUser/GetPlayerSummaries/v0002/?steamids="+strings.Join(ids, ","), &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.Response.Players) != 100 {
		t.Fatalf("got %d players, want 100", len(resp.Response.Players))
	}
	if resp.Response.Players[0].SteamID != u.Users[0].ID.String() {
		t.Fatal("wrong steamid in summary")
	}
	if resp.Response.Players[0].TimeCreated != u.Users[0].Created {
		t.Fatal("wrong creation time")
	}
}

func TestPlayerSummariesRejectsOversizedBatch(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	ids := make([]string, 0, 101)
	for i := 0; i < 101; i++ {
		ids = append(ids, u.Users[i].ID.String())
	}
	code := get(t, ts.URL+"/ISteamUser/GetPlayerSummaries/v0002/?steamids="+strings.Join(ids, ","), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", code)
	}
}

func TestPlayerSummariesSkipsUnassignedIDs(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	// An ID between assigned ones that the density gaps skipped, plus a
	// valid one.
	bogus := fmt.Sprintf("%d", uint64(u.Users[len(u.Users)-1].ID)+12345)
	var resp steamapi.PlayerSummariesResponse
	get(t, ts.URL+"/ISteamUser/GetPlayerSummaries/v0002/?steamids="+bogus+","+u.Users[5].ID.String(), &resp)
	if len(resp.Response.Players) != 1 {
		t.Fatalf("got %d players, want 1 (unassigned skipped)", len(resp.Response.Players))
	}
}

func TestFriendListMatchesUniverse(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	adj := u.Adjacency()
	// Pick a user with friends.
	var target int
	for i := range adj {
		if len(adj[i]) > 2 {
			target = i
			break
		}
	}
	var resp steamapi.FriendListResponse
	code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid="+u.Users[target].ID.String(), &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(resp.FriendsList.Friends) != len(adj[target]) {
		t.Fatalf("friend count %d, want %d", len(resp.FriendsList.Friends), len(adj[target]))
	}
	want := map[string]bool{}
	for _, f := range adj[target] {
		want[u.Users[f].ID.String()] = true
	}
	for _, f := range resp.FriendsList.Friends {
		if !want[f.SteamID] {
			t.Fatalf("unexpected friend %s", f.SteamID)
		}
		if f.Relationship != "friend" {
			t.Fatalf("relationship %q", f.Relationship)
		}
		if f.FriendSince <= 0 {
			t.Fatal("missing friend_since timestamp")
		}
	}
}

func TestOwnedGamesMatchesUniverse(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	var target int
	for i := range u.Users {
		if len(u.Users[i].Library) > 3 {
			target = i
			break
		}
	}
	var resp steamapi.OwnedGamesResponse
	get(t, ts.URL+"/IPlayerService/GetOwnedGames/v0001/?steamid="+u.Users[target].ID.String(), &resp)
	if resp.Response.GameCount != len(u.Users[target].Library) {
		t.Fatalf("game_count %d, want %d", resp.Response.GameCount, len(u.Users[target].Library))
	}
	var totalAPI int64
	for _, g := range resp.Response.Games {
		totalAPI += g.PlaytimeForever
	}
	if totalAPI != u.Users[target].TotalMinutes {
		t.Fatalf("playtime sum %d, want %d", totalAPI, u.Users[target].TotalMinutes)
	}
}

func TestUserGroupList(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	var target int
	for i := range u.Users {
		if len(u.Users[i].Groups) > 0 {
			target = i
			break
		}
	}
	var resp steamapi.UserGroupListResponse
	get(t, ts.URL+"/ISteamUser/GetUserGroupList/v0001/?steamid="+u.Users[target].ID.String(), &resp)
	if !resp.Response.Success {
		t.Fatal("success flag false")
	}
	if len(resp.Response.Groups) != len(u.Users[target].Groups) {
		t.Fatalf("group count %d, want %d", len(resp.Response.Groups), len(u.Users[target].Groups))
	}
}

func TestUnknownUser404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid=99976561197960265728", nil)
	if code != http.StatusBadRequest && code != http.StatusNotFound {
		t.Fatalf("status %d for bogus user", code)
	}
}

func TestAppListAndDetails(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	var apps steamapi.AppListResponse
	get(t, ts.URL+"/ISteamApps/GetAppList/v0002/", &apps)
	if len(apps.AppList.Apps) != len(u.Games) {
		t.Fatalf("app list has %d entries, want %d", len(apps.AppList.Apps), len(u.Games))
	}
	appID := apps.AppList.Apps[0].AppID
	var details steamapi.AppDetailsResponse
	get(t, fmt.Sprintf("%s/store/appdetails?appids=%d", ts.URL, appID), &details)
	entry, ok := details[fmt.Sprint(appID)]
	if !ok || !entry.Success || entry.Data == nil {
		t.Fatalf("appdetails entry missing: %+v", details)
	}
	if entry.Data.Name != u.Games[0].Name {
		t.Fatalf("name %q, want %q", entry.Data.Name, u.Games[0].Name)
	}
	if len(entry.Data.Genres) == 0 {
		t.Fatal("no genres in appdetails")
	}
	// Price consistency.
	if u.Games[0].PriceCents == 0 {
		if !entry.Data.IsFree {
			t.Fatal("free game not marked is_free")
		}
	} else if entry.Data.PriceOverview == nil || entry.Data.PriceOverview.Final != u.Games[0].PriceCents {
		t.Fatal("price mismatch")
	}
}

func TestAppDetailsUnknownApp(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var details steamapi.AppDetailsResponse
	get(t, ts.URL+"/store/appdetails?appids=999999999", &details)
	if entry := details["999999999"]; entry.Success {
		t.Fatal("unknown app reported success")
	}
}

func TestAchievementsEndpoint(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	var withAch *simworld.Game
	for i := range u.Games {
		if len(u.Games[i].Achievements) > 0 {
			withAch = &u.Games[i]
			break
		}
	}
	if withAch == nil {
		t.Skip("universe has no achievements")
	}
	var resp steamapi.AchievementPercentagesResponse
	get(t, fmt.Sprintf("%s/ISteamUserStats/GetGlobalAchievementPercentagesForApp/v0002/?gameid=%d", ts.URL, withAch.AppID), &resp)
	if len(resp.AchievementPercentages.Achievements) != len(withAch.Achievements) {
		t.Fatalf("achievement count %d, want %d",
			len(resp.AchievementPercentages.Achievements), len(withAch.Achievements))
	}
}

func TestAPIKeyEnforcement(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{APIKeys: []string{"SECRET"}})
	id := u.Users[0].ID.String()
	if code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid="+id, nil); code != http.StatusUnauthorized {
		t.Fatalf("missing key status %d, want 401", code)
	}
	if code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid="+id+"&key=WRONG", nil); code != http.StatusUnauthorized {
		t.Fatalf("wrong key status %d, want 401", code)
	}
	if code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid="+id+"&key=SECRET", nil); code != http.StatusOK {
		t.Fatalf("valid key status %d, want 200", code)
	}
}

func TestRateLimiting429(t *testing.T) {
	u := universe(t)
	s, ts := newTestServer(t, Config{RatePerSecond: 1, Burst: 3})
	id := u.Users[0].ID.String()
	got429 := false
	for i := 0; i < 10; i++ {
		code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid="+id, nil)
		if code == http.StatusTooManyRequests {
			got429 = true
		}
	}
	if !got429 {
		t.Fatal("no 429 despite exceeding the limit")
	}
	if s.Metrics.RateLimited.Load() == 0 {
		t.Fatal("rate-limit metric not incremented")
	}
}

func TestFaultInjection(t *testing.T) {
	u := universe(t)
	s, ts := newTestServer(t, Config{FaultRate: 0.25})
	id := u.Users[0].ID.String()
	faults := 0
	for i := 0; i < 40; i++ {
		if code := get(t, ts.URL+"/ISteamUser/GetFriendList/v0001/?steamid="+id, nil); code == http.StatusInternalServerError {
			faults++
		}
	}
	if faults != 10 {
		t.Fatalf("got %d faults in 40 requests at rate 0.25, want exactly 10 (deterministic spacing)", faults)
	}
	if s.Metrics.Faults.Load() != 10 {
		t.Fatalf("fault metric = %d", s.Metrics.Faults.Load())
	}
}

func TestPlayerAchievementsEndpoint(t *testing.T) {
	u := universe(t)
	_, ts := newTestServer(t, Config{})
	// Find a user with a played game that offers achievements.
	var uid, app string
	var want int
	for i := range u.Users {
		for _, og := range u.Users[i].Library {
			if og.TotalMinutes > 0 && len(u.Games[og.GameIdx].Achievements) > 0 {
				uid = u.Users[i].ID.String()
				app = fmt.Sprint(u.Games[og.GameIdx].AppID)
				want = u.PlayerAchievements(i, int(og.GameIdx))
				break
			}
		}
		if uid != "" {
			break
		}
	}
	if uid == "" {
		t.Skip("no played achievement games in this universe")
	}
	var resp steamapi.PlayerAchievementsResponse
	code := get(t, ts.URL+"/ISteamUserStats/GetPlayerAchievements/v0001/?steamid="+uid+"&appid="+app, &resp)
	if code != 200 || !resp.PlayerStats.Success {
		t.Fatalf("status %d, success %v", code, resp.PlayerStats.Success)
	}
	got := 0
	prev := 1
	for _, a := range resp.PlayerStats.Achievements {
		got += a.Achieved
		if a.Achieved > prev {
			t.Fatal("unlocks not monotone in difficulty order")
		}
		prev = a.Achieved
	}
	if got != want {
		t.Fatalf("endpoint reports %d unlocks, universe says %d", got, want)
	}
	// Bad appid and unknown app.
	if code := get(t, ts.URL+"/ISteamUserStats/GetPlayerAchievements/v0001/?steamid="+uid+"&appid=zzz", nil); code != 400 {
		t.Fatalf("bad appid status %d", code)
	}
	if code := get(t, ts.URL+"/ISteamUserStats/GetPlayerAchievements/v0001/?steamid="+uid+"&appid=999999999", nil); code != 404 {
		t.Fatalf("unknown app status %d", code)
	}
}
