package apiserver

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"steamstudy/internal/steamapi"
)

// faultTestURL returns a friend-list request for a real user.
func faultTestURL(t *testing.T, base string) string {
	t.Helper()
	return base + "/ISteamUser/GetFriendList/v0001/?steamid=" + universe(t).Users[0].ID.String()
}

// alwaysProfile injects the given class on every request.
func alwaysProfile(class FaultClass) *FaultProfile {
	spec := FaultSpec{RetryAfter: time.Second, StallFor: 50 * time.Millisecond}
	switch class {
	case Fault500:
		spec.Error500 = 1
	case Fault503:
		spec.Unavail503 = 1
	case FaultReset:
		spec.ConnReset = 1
	case FaultStall:
		spec.Stall = 1
	case FaultTruncate:
		spec.Truncate = 1
	case FaultMalformedJSON:
		spec.MalformedJSON = 1
	case FaultWrongJSON:
		spec.WrongJSON = 1
	}
	return &FaultProfile{Seed: 7, Default: spec}
}

func TestFault500(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: alwaysProfile(Fault500)})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if s.Metrics.Faults500.Load() != 1 || s.Metrics.Faults.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFault503CarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: alwaysProfile(Fault503)})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	if s.Metrics.Faults503.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFaultConnReset(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: alwaysProfile(FaultReset)})
	_, err := http.Get(faultTestURL(t, ts.URL))
	if err == nil {
		t.Fatal("hijacked+closed connection produced a response")
	}
	if s.Metrics.Resets.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFaultStallTripsClientTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: &FaultProfile{
		Seed:    7,
		Default: FaultSpec{Stall: 1, StallFor: 2 * time.Second},
	}})
	client := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(faultTestURL(t, ts.URL))
	if err == nil {
		t.Fatal("stalled response beat a 50ms client timeout")
	}
	if time.Since(start) > time.Second {
		t.Fatal("client timeout did not interrupt the stall")
	}
	if s.Metrics.Stalls.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFaultStallEventuallyServes(t *testing.T) {
	// A patient client gets the real (late) response: stall is latency,
	// not loss.
	_, ts := newTestServer(t, Config{Faults: &FaultProfile{
		Seed:    7,
		Default: FaultSpec{Stall: 1, StallFor: 20 * time.Millisecond},
	}})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out steamapi.FriendListResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("stalled-but-served response undecodable: %v", err)
	}
}

func TestFaultTruncatedBody(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: alwaysProfile(FaultTruncate)})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with torn body", resp.StatusCode)
	}
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("truncated body read to completion without error")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "EOF") {
		t.Fatalf("unexpected truncation error: %v", err)
	}
	if s.Metrics.Truncations.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFaultMalformedJSON(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: alwaysProfile(FaultMalformedJSON)})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out steamapi.FriendListResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err == nil {
		t.Fatal("malformed JSON decoded cleanly")
	}
	if s.Metrics.Malformed.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFaultWrongJSONRejectedByStrictDecoding(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: alwaysProfile(FaultWrongJSON)})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// It IS valid JSON — a lenient decode accepts it silently ...
	var lenient steamapi.FriendListResponse
	if err := json.Unmarshal(body, &lenient); err != nil {
		t.Fatalf("wrong-JSON body is not even valid JSON: %v", err)
	}
	// ... which is exactly the trap: only strict decoding catches it, on
	// struct envelopes and map envelopes alike.
	strict := json.NewDecoder(strings.NewReader(string(body)))
	strict.DisallowUnknownFields()
	if err := strict.Decode(&lenient); err == nil {
		t.Fatal("strict decode accepted wrong-shaped JSON (struct envelope)")
	}
	strict = json.NewDecoder(strings.NewReader(string(body)))
	strict.DisallowUnknownFields()
	var asMap steamapi.AppDetailsResponse
	if err := strict.Decode(&asMap); err == nil {
		t.Fatal("strict decode accepted wrong-shaped JSON (map envelope)")
	}
	if s.Metrics.WrongJSON.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}

func TestFaultOutageWindow(t *testing.T) {
	s, ts := newTestServer(t, Config{Faults: &FaultProfile{
		Seed:        7,
		OutageEvery: 5,
		OutageLen:   3,
	}})
	u := faultTestURL(t, ts.URL)
	var statuses []int
	for i := 0; i < 16; i++ {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
	}
	// Every 5th healthy request opens a 3-request 503 window:
	// 4×200, 3×503, 4×200, 3×503, 2×200.
	want := []int{200, 200, 200, 200, 503, 503, 503, 200, 200, 200, 200, 503, 503, 503, 200, 200}
	for i, st := range statuses {
		if st != want[i] {
			t.Fatalf("request %d: status %d, want %d (full sequence %v)", i, st, want[i], statuses)
		}
	}
	if s.Metrics.OutageDrops.Load() != 6 {
		t.Fatalf("outage drops %d, want 6", s.Metrics.OutageDrops.Load())
	}
}

func TestFaultProfileDeterministic(t *testing.T) {
	// The same seed must yield the identical fault sequence on a serial
	// request stream — chaos tests reproduce exactly.
	run := func() []int {
		_, ts := newTestServer(t, Config{Faults: &FaultProfile{
			Seed:    42,
			Default: FaultSpec{Error500: 0.3, Unavail503: 0.2},
		}})
		u := faultTestURL(t, ts.URL)
		var out []int
		for i := 0; i < 40; i++ {
			resp, err := http.Get(u)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out = append(out, resp.StatusCode)
		}
		return out
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %d vs %d — fault sequence not reproducible", i, a[i], b[i])
		}
		if a[i] != 200 {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("profile injected no faults in 40 requests at combined rate 0.5")
	}
}

func TestFaultPerEndpointOverride(t *testing.T) {
	// Storefront is broken, user endpoints are healthy.
	s, ts := newTestServer(t, Config{Faults: &FaultProfile{
		Seed: 7,
		Endpoints: map[string]FaultSpec{
			"/store/appdetails": {Error500: 1},
		},
	}})
	resp, err := http.Get(faultTestURL(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy endpoint got status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/store/appdetails?appids=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("overridden endpoint got status %d, want 500", resp.StatusCode)
	}
	if s.Metrics.Faults500.Load() != 1 {
		t.Fatalf("metrics: %+v", s.Metrics.Snapshot())
	}
}
