package apiserver

import (
	"net/http"
	"time"
)

// Middleware wraps an http.HandlerFunc with one server concern. The
// server's request path used to be a 40-line monolithic wrapper; it is
// now built from these stages, each independently constructible, so tests
// can assemble partial stacks (fault injection without auth, metrics
// without rate limiting) and the production stack is just a list.
type Middleware func(http.HandlerFunc) http.HandlerFunc

// Chain composes stages around h. Stages apply outside-in: the first
// stage sees the request first and the response last.
func Chain(h http.HandlerFunc, stages ...Middleware) http.HandlerFunc {
	for i := len(stages) - 1; i >= 0; i-- {
		h = stages[i](h)
	}
	return h
}

// Stack returns the server's production middleware order for one mux
// pattern:
//
//	Observe -> Auth -> RateLimit -> FaultInjection -> handler
//
// Observe sits outermost so every request is counted and timed, including
// the ones auth or the rate limiter turn away.
func (s *Server) Stack(pattern string) []Middleware {
	return []Middleware{
		s.Observe(pattern),
		s.Auth(),
		s.RateLimit(),
		s.FaultInjection(pattern),
	}
}

// Observe counts the request (total and per endpoint) and records its
// wall time in the latency histogram. The per-endpoint counter is
// resolved here, once per pattern, so the request path itself is two
// atomic adds and a histogram observe.
func (s *Server) Observe(pattern string) Middleware {
	perEndpoint := s.obs.Counter("apiserver_endpoint_requests:" + pattern)
	return func(next http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s.Metrics.Requests.Add(1)
			perEndpoint.Inc()
			start := time.Now()
			next(w, r)
			s.latency.ObserveSince(start)
		}
	}
}

// Auth rejects requests without a valid API key with HTTP 401. A server
// configured without keys passes everything through.
func (s *Server) Auth() Middleware {
	return func(next http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if len(s.cfg.APIKeys) > 0 && !s.validKey(r.URL.Query().Get("key")) {
				s.Metrics.Unauthorized.Add(1)
				writeError(w, http.StatusUnauthorized, "invalid API key")
				return
			}
			next(w, r)
		}
	}
}

// RateLimit enforces the per-key token bucket, answering HTTP 429 with
// Retry-After when the key is over budget. A server configured without a
// rate passes everything through.
func (s *Server) RateLimit() Middleware {
	return func(next http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if s.cfg.RatePerSecond > 0 {
				if !s.limiterFor(r.URL.Query().Get("key")).Allow() {
					s.Metrics.RateLimited.Add(1)
					w.Header().Set("Retry-After", "1")
					writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
					return
				}
			}
			next(w, r)
		}
	}
}

// FaultInjection applies the legacy evenly-spaced 500s (Config.FaultRate)
// and the composable fault profile (Config.Faults) for one mux pattern.
// Stall faults delay and then fall through to the handler; every other
// class fully consumes the request.
func (s *Server) FaultInjection(pattern string) Middleware {
	return func(next http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if s.cfg.FaultRate > 0 && s.nextFault() {
				s.Metrics.Faults.Add(1)
				writeError(w, http.StatusInternalServerError, "injected fault")
				return
			}
			if s.faults != nil {
				if class, spec := s.faults.decide(pattern); class != FaultNone {
					s.Metrics.Faults.Add(1)
					if s.inject(w, r, class, spec, next) {
						return
					}
				}
			}
			next(w, r)
		}
	}
}
