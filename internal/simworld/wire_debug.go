package simworld

// debugWireStats is set by tests to capture wiring pass efficiency.
var debugWireStats *WireStats

// WireStats counts edges created per wiring phase.
type WireStats struct {
	Pass1, Pass2, Repair int
	SameCountryP1        int
}
