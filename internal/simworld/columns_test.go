package simworld

import "testing"

// BuildColumns is a pure re-projection: every column must agree with the
// row-oriented universe it was built from.
func TestBuildColumnsAgreesWithUniverse(t *testing.T) {
	cfg := DefaultConfig(1200)
	cfg.CatalogSize = 150
	u := MustGenerate(cfg, 11)
	c := u.BuildColumns()

	deg := u.FriendCounts()
	for i := range u.Users {
		user := &u.Users[i]
		if c.TotalMinutes[i] != user.TotalMinutes || c.TwoWeekMinutes[i] != user.TwoWeekMinutes {
			t.Fatalf("user %d playtime columns diverge", i)
		}
		if int(c.LibrarySize[i]) != len(user.Library) || int(c.GroupCount[i]) != len(user.Groups) {
			t.Fatalf("user %d size columns diverge", i)
		}
		if c.AccountAge[i] != u.CollectedAt-user.Created {
			t.Fatalf("user %d account age diverges", i)
		}
		if int(c.FriendDegree[i]) != deg[i] {
			t.Fatalf("user %d degree: column %d, FriendCounts %d", i, c.FriendDegree[i], deg[i])
		}

		// Recompute the genre histogram row-wise.
		var want [genreCount]int32
		for k := range user.Library {
			mask := u.Games[user.Library[k].GameIdx].Genres
			for b := 0; b < genreCount; b++ {
				if mask&(1<<b) != 0 {
					want[b]++
				}
			}
		}
		got := [genreCount]int32{}
		for _, cell := range c.GenreCells[c.GenreOffsets[i]:c.GenreOffsets[i+1]] {
			if GenreCellCount(cell) == 0 {
				t.Fatalf("user %d has an empty genre cell", i)
			}
			got[GenreCellIndex(cell)] = int32(GenreCellCount(cell))
		}
		if want != got {
			t.Fatalf("user %d genre histogram: want %v, got %v", i, want, got)
		}
	}
	if len(c.Genres) != genreCount {
		t.Fatalf("genre table has %d entries", len(c.Genres))
	}
	for _, code := range c.Countries {
		if code == "" {
			t.Fatal("interned country table contains the empty label")
		}
	}
}
