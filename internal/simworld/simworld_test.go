package simworld

import (
	"testing"
	"testing/quick"
)

func smallConfig(users int) Config {
	cfg := DefaultConfig(users)
	cfg.CatalogSize = 400
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(2000)
	a := MustGenerate(cfg, 5)
	b := MustGenerate(cfg, 5)
	if len(a.Users) != len(b.Users) || len(a.Friendships) != len(b.Friendships) {
		t.Fatal("same seed produced different universe sizes")
	}
	for i := range a.Users {
		ua, ub := &a.Users[i], &b.Users[i]
		if ua.ID != ub.ID || ua.TotalMinutes != ub.TotalMinutes ||
			ua.ValueCents != ub.ValueCents || len(ua.Library) != len(ub.Library) {
			t.Fatalf("user %d differs between identical generations", i)
		}
	}
	for i := range a.Friendships {
		if a.Friendships[i] != b.Friendships[i] {
			t.Fatalf("friendship %d differs between identical generations", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := smallConfig(2000)
	a := MustGenerate(cfg, 1)
	b := MustGenerate(cfg, 2)
	if len(a.Friendships) == len(b.Friendships) && len(a.Friendships) > 0 {
		same := true
		for i := range a.Friendships {
			if a.Friendships[i] != b.Friendships[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical friendship lists")
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	cfg := DefaultConfig(10) // below the minimum population
	if _, err := Generate(cfg, 1); err == nil {
		t.Fatal("tiny population accepted")
	}
	cfg = DefaultConfig(1000)
	cfg.Friends.ZeroFrac = 1.5
	if _, err := Generate(cfg, 1); err == nil {
		t.Fatal("invalid zero fraction accepted")
	}
	cfg = DefaultConfig(1000)
	cfg.HomophilyNoise = 0
	if _, err := Generate(cfg, 1); err == nil {
		t.Fatal("zero homophily noise accepted")
	}
}

func TestUniverseInvariants(t *testing.T) {
	u := MustGenerate(smallConfig(3000), 11)

	// Friendships: valid endpoints, no self-loops, no duplicates, sorted
	// by timestamp, timestamps within the observation window.
	seen := map[[2]int32]bool{}
	var prev int64
	for _, f := range u.Friendships {
		if f.A == f.B {
			t.Fatal("self-loop friendship")
		}
		if f.A < 0 || int(f.A) >= len(u.Users) || f.B < 0 || int(f.B) >= len(u.Users) {
			t.Fatal("friendship endpoint out of range")
		}
		key := [2]int32{f.A, f.B}
		if seen[key] {
			t.Fatal("duplicate friendship")
		}
		seen[key] = true
		if f.Since < prev {
			t.Fatal("friendships not sorted by timestamp")
		}
		prev = f.Since
		if f.Since > u.CollectedAt {
			t.Fatal("friendship created after the crawl")
		}
		// Edges cannot predate both accounts.
		created := u.Users[f.A].Created
		if c := u.Users[f.B].Created; c > created {
			created = c
		}
		if f.Since < created {
			t.Fatal("friendship predates one of its accounts")
		}
	}

	for i := range u.Users {
		user := &u.Users[i]
		// Playtime caches match the library.
		var tot, tw int64
		gameSeen := map[int32]bool{}
		for _, g := range user.Library {
			if g.GameIdx < 0 || int(g.GameIdx) >= len(u.Games) {
				t.Fatal("library game index out of range")
			}
			if gameSeen[g.GameIdx] {
				t.Fatal("duplicate game in library")
			}
			gameSeen[g.GameIdx] = true
			if g.TotalMinutes < 0 || g.TwoWeekMinutes < 0 {
				t.Fatal("negative playtime")
			}
			if int64(g.TwoWeekMinutes) > g.TotalMinutes {
				t.Fatal("two-week playtime exceeds lifetime playtime")
			}
			tot += g.TotalMinutes
			tw += int64(g.TwoWeekMinutes)
		}
		if tot != user.TotalMinutes || tw != user.TwoWeekMinutes {
			t.Fatalf("user %d playtime caches stale: %d/%d vs %d/%d",
				i, user.TotalMinutes, user.TwoWeekMinutes, tot, tw)
		}
		// Value cache matches prices.
		var val int64
		for _, g := range user.Library {
			val += u.Games[g.GameIdx].PriceCents
		}
		if val != user.ValueCents {
			t.Fatalf("user %d value cache stale", i)
		}
		// Two-week playtime bounded by 336 hours.
		if user.TwoWeekMinutes > 14*24*60 {
			t.Fatalf("user %d two-week playtime %d exceeds the physical bound", i, user.TwoWeekMinutes)
		}
		if user.Created < SteamLaunch || user.Created > u.CollectedAt {
			t.Fatalf("user %d creation time out of range", i)
		}
	}

	// IDs are strictly increasing (sequential assignment).
	for i := 1; i < len(u.Users); i++ {
		if u.Users[i].ID <= u.Users[i-1].ID {
			t.Fatal("user IDs not strictly increasing")
		}
		if u.Users[i].Created < u.Users[i-1].Created {
			t.Fatal("creation times not aligned with ID order")
		}
	}

	// Group memberships are consistent in both directions.
	for gi := range u.Groups {
		for _, m := range u.Groups[gi].Members {
			found := false
			for _, g := range u.Users[m].Groups {
				if int(g) == gi {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("group %d lists member %d, but the user does not list the group", gi, m)
			}
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	u := MustGenerate(smallConfig(2000), 13)
	adj := u.Adjacency()
	deg := u.FriendCounts()
	for i := range adj {
		if len(adj[i]) != deg[i] {
			t.Fatalf("degree mismatch for user %d", i)
		}
		for _, j := range adj[i] {
			found := false
			for _, back := range adj[j] {
				if int(back) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", i, j)
			}
		}
	}
}

func TestWeekSeriesProperties(t *testing.T) {
	u := MustGenerate(smallConfig(3000), 17)
	// Deterministic per user.
	for i := 0; i < 50; i++ {
		a := u.WeekSeries(i)
		b := u.WeekSeries(i)
		if a != b {
			t.Fatalf("week series for user %d not deterministic", i)
		}
		for d, m := range a {
			if m < 0 || m > 24*60 {
				t.Fatalf("user %d day %d minutes %d out of range", i, d, m)
			}
		}
	}
	// Engaged users play more across the week than idle ones, on average.
	var activeSum, idleSum, activeN, idleN float64
	for i := range u.Users {
		w := u.WeekSeries(i)
		tot := 0
		for _, m := range w {
			tot += int(m)
		}
		if u.Users[i].TwoWeekMinutes > 600 {
			activeSum += float64(tot)
			activeN++
		} else if u.Users[i].TwoWeekMinutes == 0 {
			idleSum += float64(tot)
			idleN++
		}
	}
	if activeN == 0 || idleN == 0 {
		t.Skip("population too small for the engagement comparison")
	}
	if activeSum/activeN <= idleSum/idleN {
		t.Fatalf("active users do not out-play idle users over the week: %v vs %v",
			activeSum/activeN, idleSum/idleN)
	}
}

func TestSampleWeekUsers(t *testing.T) {
	u := MustGenerate(smallConfig(4000), 19)
	sample := u.SampleWeekUsers(0.005)
	want := len(u.Users) / 200
	if len(sample) < want || len(sample) > want+1 {
		t.Fatalf("0.5%% sample has %d users, want ~%d", len(sample), want)
	}
	// Ordered by lifetime playtime.
	for i := 1; i < len(sample); i++ {
		if u.Users[sample[i]].TotalMinutes < u.Users[sample[i-1]].TotalMinutes {
			t.Fatal("week sample not ordered by lifetime playtime")
		}
	}
	// Degenerate frac falls back to the default.
	if got := u.SampleWeekUsers(0); len(got) != len(sample) {
		t.Fatal("zero frac did not fall back to 0.5%")
	}
}

func TestEvolveSecondSnapshot(t *testing.T) {
	cfg := DefaultConfig(5000)
	cfg.CatalogSize = 3000 // headroom so the largest library can still grow
	u := MustGenerate(cfg, 23)
	v := Evolve(u)

	if v.CollectedAt != SecondSnapshotEnd {
		t.Fatal("second snapshot timestamp wrong")
	}
	// The first snapshot is untouched.
	for i := range u.Users {
		var tot int64
		for _, g := range u.Users[i].Library {
			tot += g.TotalMinutes
		}
		if tot != u.Users[i].TotalMinutes {
			t.Fatal("Evolve mutated the source universe")
		}
	}

	var grewLib, shrankLib, grewVal int
	var maxBefore, maxAfter int
	for i := range v.Users {
		b, a := len(u.Users[i].Library), len(v.Users[i].Library)
		if a > b {
			grewLib++
		}
		if a < b {
			shrankLib++
		}
		if v.Users[i].ValueCents > u.Users[i].ValueCents {
			grewVal++
		}
		if v.Users[i].ValueCents < u.Users[i].ValueCents {
			t.Fatal("account value shrank: games cannot be un-owned")
		}
		if v.Users[i].TotalMinutes < u.Users[i].TotalMinutes {
			t.Fatal("lifetime playtime shrank")
		}
		if b > maxBefore {
			maxBefore = b
		}
		if a > maxAfter {
			maxAfter = a
		}
	}
	if shrankLib > 0 {
		t.Fatalf("%d libraries shrank", shrankLib)
	}
	if grewLib == 0 || grewVal == 0 {
		t.Fatal("no growth between snapshots")
	}
	// §8: the tail inflates much faster than the 80th percentile.
	if maxAfter <= maxBefore {
		t.Fatalf("top library did not grow: %d -> %d", maxBefore, maxAfter)
	}
	growthTop := float64(maxAfter) / float64(maxBefore)
	if growthTop < 1.2 {
		t.Fatalf("top library grew only %.2fx; §8 reports ~1.8x", growthTop)
	}
}

func TestGenreBitmask(t *testing.T) {
	m := GenreAction | GenreRPG
	if !m.Has(GenreAction) || !m.Has(GenreRPG) || m.Has(GenreStrategy) {
		t.Fatal("genre bitmask broken")
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "Action" || names[1] != "RPG" {
		t.Fatalf("genre names = %v", names)
	}
}

func TestFriendCapPolicy(t *testing.T) {
	u := User{}
	if u.FriendCap() != 250 {
		t.Fatalf("base cap = %d", u.FriendCap())
	}
	u.Persona |= PersonaFacebookLinked
	if u.FriendCap() != 300 {
		t.Fatalf("facebook cap = %d", u.FriendCap())
	}
	u.BadgeLevel = 10
	if u.FriendCap() != 350 {
		t.Fatalf("badge cap = %d", u.FriendCap())
	}
}

func TestGroupTypeStrings(t *testing.T) {
	want := map[GroupType]string{
		GroupGameServer:      "Game Server",
		GroupSingleGame:      "Single Game",
		GroupGamingCommunity: "Gaming Community",
		GroupSpecialInterest: "Special Interest",
		GroupSteam:           "Steam",
		GroupPublisher:       "Publisher",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Fatalf("GroupType(%d) = %q, want %q", ty, ty.String(), s)
		}
	}
}

func TestQuickWeekSeriesBounds(t *testing.T) {
	u := MustGenerate(smallConfig(1000), 29)
	err := quick.Check(func(raw uint16) bool {
		i := int(raw) % len(u.Users)
		w := u.WeekSeries(i)
		for _, m := range w {
			if m < 0 || m > 24*60 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAchievementsStructure(t *testing.T) {
	u := MustGenerate(smallConfig(2000), 31)
	none, some, spam := 0, 0, 0
	for i := range u.Games {
		g := &u.Games[i]
		if g.Type != ProductGame {
			continue
		}
		switch n := len(g.Achievements); {
		case n == 0:
			none++
		case n > 90:
			spam++
		default:
			some++
		}
		for _, a := range g.Achievements {
			if a.GlobalPercent <= 0 || a.GlobalPercent > 100 {
				t.Fatalf("achievement percent out of range: %v", a.GlobalPercent)
			}
		}
		if len(g.Achievements) > 1629 {
			t.Fatalf("achievement count %d exceeds the paper's maximum", len(g.Achievements))
		}
	}
	if none == 0 || some == 0 {
		t.Fatalf("achievement mix degenerate: none=%d some=%d spam=%d", none, some, spam)
	}
}

func TestPlayerAchievementsProperties(t *testing.T) {
	u := MustGenerate(smallConfig(3000), 41)
	for i := 0; i < 300; i++ {
		user := &u.Users[i]
		for _, og := range user.Library {
			got := u.PlayerAchievements(i, int(og.GameIdx))
			n := len(u.Games[og.GameIdx].Achievements)
			if got < 0 || got > n {
				t.Fatalf("unlocks %d outside [0, %d]", got, n)
			}
			if og.TotalMinutes == 0 && got != 0 {
				t.Fatal("unplayed game has unlocks")
			}
			// Deterministic.
			if again := u.PlayerAchievements(i, int(og.GameIdx)); again != got {
				t.Fatal("PlayerAchievements not deterministic")
			}
		}
		// A game the user does not own yields zero.
		if u.PlayerAchievements(i, 0) != 0 {
			owned := false
			for _, og := range user.Library {
				if og.GameIdx == 0 {
					owned = true
				}
			}
			if !owned {
				t.Fatal("unowned game has unlocks")
			}
		}
	}
}

func TestPlayerCompletionRatesHunterSeparation(t *testing.T) {
	cfg := DefaultConfig(20000)
	cfg.CatalogSize = 1500
	u := MustGenerate(cfg, 43)
	all, hunters := u.PlayerCompletionRates(0.2)
	if len(all) == 0 {
		t.Fatal("no completion observations")
	}
	if len(hunters) == 0 {
		t.Skip("no hunters in this sample")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(hunters) < 3*mean(all) {
		t.Fatalf("hunter mean %.3f not well above overall %.3f", mean(hunters), mean(all))
	}
	for _, r := range all {
		if r < 0 || r > 1 {
			t.Fatalf("completion rate %v outside [0,1]", r)
		}
	}
}

func TestWiringPhaseShares(t *testing.T) {
	// The domestic pass must place the overwhelming majority of edges
	// (DomesticWiringFrac = 0.93 by default); the repair pass exists only
	// to absorb duplicate-edge losses and should stay a small minority.
	debugWireStats = &WireStats{}
	defer func() { debugWireStats = nil }()
	MustGenerate(smallConfig(5000), 61)
	total := debugWireStats.Pass1 + debugWireStats.Pass2 + debugWireStats.Repair
	if total == 0 {
		t.Fatal("no edges recorded")
	}
	p1 := float64(debugWireStats.Pass1) / float64(total)
	repair := float64(debugWireStats.Repair) / float64(total)
	if p1 < 0.5 {
		t.Fatalf("domestic pass produced only %.0f%% of edges", p1*100)
	}
	if repair > 0.35 {
		t.Fatalf("repair pass produced %.0f%% of edges; wiring efficiency regressed", repair*100)
	}
}
