package simworld

import (
	"math"
	"sync"
	"testing"

	"steamstudy/internal/stats"
)

// calibUniverse is generated once and shared by the calibration tests
// (generation of the 40k-user universe takes a few hundred ms).
var (
	calibOnce sync.Once
	calibU    *Universe
)

func calibrated(t *testing.T) *Universe {
	t.Helper()
	calibOnce.Do(func() {
		calibU = MustGenerate(DefaultConfig(40000), 42)
	})
	return calibU
}

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > frac {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > frac {
		t.Errorf("%s = %v, want %v (±%.0f%%)", name, got, want, frac*100)
	}
}

// nonZeroAttr extracts an attribute over users with a nonzero value.
func nonZeroAttr(u *Universe, get func(i int) float64) []float64 {
	var out []float64
	for i := range u.Users {
		if v := get(i); v > 0 {
			out = append(out, v)
		}
	}
	return out
}

func TestCalibrationTable3Friends(t *testing.T) {
	u := calibrated(t)
	deg := u.FriendCounts()
	fr := nonZeroAttr(u, func(i int) float64 { return float64(deg[i]) })
	got := stats.Percentiles(fr, 50, 80, 90, 95, 99)
	want := []float64{4, 15, 29, 50, 122}
	for i := range want {
		within(t, "friends percentile", got[i], want[i], 0.15)
	}
}

func TestCalibrationTable3Games(t *testing.T) {
	u := calibrated(t)
	gm := nonZeroAttr(u, func(i int) float64 { return float64(len(u.Users[i].Library)) })
	got := stats.Percentiles(gm, 50, 80, 90, 95, 99)
	want := []float64{4, 10, 21, 39, 115}
	for i := range want {
		within(t, "games percentile", got[i], want[i], 0.20)
	}
}

func TestCalibrationTable3Groups(t *testing.T) {
	u := calibrated(t)
	gr := nonZeroAttr(u, func(i int) float64 { return float64(len(u.Users[i].Groups)) })
	got := stats.Percentiles(gr, 50, 80, 90, 95, 99)
	want := []float64{2, 7, 13, 22, 62}
	for i := range want {
		within(t, "groups percentile", got[i], want[i], 0.20)
	}
}

func TestCalibrationTable3Playtime(t *testing.T) {
	u := calibrated(t)
	tot := nonZeroAttr(u, func(i int) float64 { return float64(u.Users[i].TotalMinutes) / 60 })
	got := stats.Percentiles(tot, 50, 80, 90, 95, 99)
	want := []float64{34, 336.4, 739.8, 1233.9, 2660.1}
	for i := range want {
		within(t, "total playtime percentile", got[i], want[i], 0.12)
	}
}

func TestCalibrationTwoWeekPlaytime(t *testing.T) {
	u := calibrated(t)
	var all []float64
	for i := range u.Users {
		all = append(all, float64(u.Users[i].TwoWeekMinutes)/60)
	}
	// §6.1: over 80 % of users had zero two-week playtime.
	within(t, "zero two-week fraction", stats.ZeroFraction(all), 0.806, 0.03)
	// Table 3 over-all percentiles: p90 = 8.7h, p95 = 25.5h, p99 = 70.8h.
	got := stats.Percentiles(all, 90, 95, 99)
	want := []float64{8.7, 25.5, 70.8}
	for i := range want {
		within(t, "two-week percentile", got[i], want[i], 0.15)
	}
	// Fig 7: 80th percentile of nonzero two-week playtime = 32.05 h,
	// maximum bounded by 336 h.
	nz := stats.NonZero(all)
	within(t, "nonzero two-week p80", stats.Percentile(nz, 80), 32.05, 0.10)
	if max := stats.Summarize(nz).Max; max > 336.0001 {
		t.Errorf("two-week playtime exceeds the 336-hour bound: %v", max)
	}
}

func TestCalibrationMarketValue(t *testing.T) {
	u := calibrated(t)
	val := nonZeroAttr(u, func(i int) float64 { return float64(u.Users[i].ValueCents) / 100 })
	got := stats.Percentiles(val, 50, 80, 90)
	want := []float64{49.97, 150.88, 317.64}
	for i := range want {
		within(t, "market value percentile", got[i], want[i], 0.30)
	}
}

func TestCalibrationParetoShares(t *testing.T) {
	u := calibrated(t)
	tot := nonZeroAttr(u, func(i int) float64 { return float64(u.Users[i].TotalMinutes) })
	// §6.1: top 20 % of players hold 82.4 % of all playtime.
	within(t, "top-20% playtime share", stats.TopShare(tot, 0.20), 0.824, 0.06)
}

func TestCalibrationMultiplayerShares(t *testing.T) {
	u := calibrated(t)
	var mpTot, allTot, mpTW, allTW float64
	for i := range u.Users {
		for _, g := range u.Users[i].Library {
			allTot += float64(g.TotalMinutes)
			allTW += float64(g.TwoWeekMinutes)
			if u.Games[g.GameIdx].Multiplayer {
				mpTot += float64(g.TotalMinutes)
				mpTW += float64(g.TwoWeekMinutes)
			}
		}
	}
	// §6.2: 57.7 % of total and 67.7 % of two-week playtime is on
	// multiplayer games, though only 48.7 % of games are multiplayer.
	within(t, "multiplayer total share", mpTot/allTot, 0.577, 0.08)
	within(t, "multiplayer two-week share", mpTW/allTW, 0.677, 0.08)
	mp := 0
	for i := range u.Games {
		if u.Games[i].Multiplayer {
			mp++
		}
	}
	within(t, "multiplayer catalog share", float64(mp)/float64(len(u.Games)), 0.487, 0.05)
}

func TestCalibrationSection7Correlations(t *testing.T) {
	u := calibrated(t)
	deg := u.FriendCounts()
	var gm, fr, tot, tw []float64
	for i := range u.Users {
		if len(u.Users[i].Library) == 0 {
			continue // §7 correlations are over game owners
		}
		gm = append(gm, float64(len(u.Users[i].Library)))
		fr = append(fr, float64(deg[i]))
		tot = append(tot, float64(u.Users[i].TotalMinutes))
		tw = append(tw, float64(u.Users[i].TwoWeekMinutes))
	}
	within(t, "rho(games, friends)", stats.Spearman(gm, fr), 0.34, 0.25)
	within(t, "rho(games, two-week)", stats.Spearman(gm, tw), 0.28, 0.25)
	within(t, "rho(games, total)", stats.Spearman(gm, tot), 0.21, 0.25)
	// The paper's "no correlation" pair: friends vs two-week playtime.
	if rho := stats.Spearman(fr, tw); math.Abs(rho) > 0.19 {
		t.Errorf("rho(friends, two-week) = %v, want very weak (<0.19)", rho)
	}
}

func TestCalibrationHomophily(t *testing.T) {
	u := calibrated(t)
	deg := u.FriendCounts()
	adj := u.Adjacency()
	homophily := func(attr func(i int) float64) float64 {
		var own, nbr []float64
		for i := range u.Users {
			if len(adj[i]) == 0 {
				continue
			}
			sum := 0.0
			for _, j := range adj[i] {
				sum += attr(int(j))
			}
			own = append(own, attr(i))
			nbr = append(nbr, sum/float64(len(adj[i])))
		}
		return stats.Spearman(own, nbr)
	}
	val := homophily(func(i int) float64 { return float64(u.Users[i].ValueCents) })
	frs := homophily(func(i int) float64 { return float64(deg[i]) })
	tot := homophily(func(i int) float64 { return float64(u.Users[i].TotalMinutes) })
	gms := homophily(func(i int) float64 { return float64(len(u.Users[i].Library)) })
	// §7: all four homophily correlations are at least moderate, and
	// market value is the strongest. Absolute magnitudes are below the
	// paper's (documented in EXPERIMENTS.md); the qualitative finding —
	// players befriend players similar in money spent, popularity,
	// playtime and library size — must hold.
	for name, rho := range map[string]float64{
		"value": val, "friends": frs, "total": tot, "games": gms,
	} {
		if rho < 0.30 {
			t.Errorf("homophily(%s) = %v, want at least moderate (>=0.30)", name, rho)
		}
	}
	if val < tot || val < gms || val < frs {
		t.Errorf("value homophily (%v) should be the strongest (friends %v, total %v, games %v)",
			val, frs, tot, gms)
	}
}

func TestCalibrationLocality(t *testing.T) {
	u := calibrated(t)
	var domestic, international, sameCity, diffCity int
	for _, f := range u.Friendships {
		a, b := &u.Users[f.A], &u.Users[f.B]
		if a.Country != "" && b.Country != "" {
			if a.Country == b.Country {
				domestic++
			} else {
				international++
			}
		}
		if a.City != "" && b.City != "" {
			if a.City == b.City {
				sameCity++
			} else {
				diffCity++
			}
		}
	}
	intl := float64(international) / float64(domestic+international)
	// §4.1: 30.34 % of reported-country friendships are international.
	within(t, "international friendship share", intl, 0.3034, 0.35)
	// §4.1: 79.84 % of reported-city friendships span cities.
	diff := float64(diffCity) / float64(sameCity+diffCity)
	if diff < 0.70 || diff > 0.97 {
		t.Errorf("cross-city friendship share = %v, want near 0.80", diff)
	}
}

func TestCalibrationCountryTable(t *testing.T) {
	u := calibrated(t)
	counts := map[string]int{}
	reporters := 0
	for i := range u.Users {
		if c := u.Users[i].Country; c != "" {
			counts[c]++
			reporters++
		}
	}
	within(t, "country report fraction", float64(reporters)/float64(len(u.Users)), 0.107, 0.10)
	within(t, "US share among reporters", float64(counts["US"])/float64(reporters), 0.2021, 0.15)
	within(t, "RU share among reporters", float64(counts["RU"])/float64(reporters), 0.1018, 0.20)
	if len(counts) < 60 {
		t.Errorf("only %d distinct countries reported; expect a long tail", len(counts))
	}
}

func TestCalibrationCatalogGenreMix(t *testing.T) {
	u := calibrated(t)
	action := 0
	for i := range u.Games {
		if u.Games[i].Genres.Has(GenreAction) {
			action++
		}
	}
	within(t, "Action catalog share", float64(action)/float64(len(u.Games)), 0.381, 0.10)
}

func TestCalibrationGenreOwnershipOrdering(t *testing.T) {
	u := calibrated(t)
	owned := map[Genre]int{}
	unplayed := map[Genre]int{}
	for i := range u.Users {
		for _, g := range u.Users[i].Library {
			mask := u.Games[g.GameIdx].Genres
			for b := 0; b < genreCount; b++ {
				gen := Genre(1 << b)
				if mask.Has(gen) {
					owned[gen]++
					if g.TotalMinutes == 0 {
						unplayed[gen]++
					}
				}
			}
		}
	}
	// Fig 5: Action is by far the most-owned genre.
	for b := 1; b < genreCount; b++ {
		if owned[Genre(1<<b)] >= owned[GenreAction] {
			t.Errorf("genre %s owned more than Action", GenreNames[b])
		}
	}
	// Fig 5: a large fraction of owned games is never played, in every
	// major genre.
	for _, gen := range []Genre{GenreAction, GenreStrategy, GenreIndie, GenreRPG} {
		frac := float64(unplayed[gen]) / float64(owned[gen])
		if frac < 0.15 || frac > 0.60 {
			t.Errorf("unplayed fraction for %v = %v, want the Fig 5 regime (0.15-0.60)", gen, frac)
		}
	}
}

func TestCalibrationAggregateScale(t *testing.T) {
	u := calibrated(t)
	s := u.Stats()
	n := float64(s.Users)
	// Paper aggregates, per account: 196.37M/108.7M friendships ≈ 1.81
	// (edges), 384.3M/108.7M games ≈ 3.54, 81.3M/108.7M memberships ≈ 0.75.
	within(t, "friendship edges per account", float64(s.Friendships)/n, 1.81, 0.15)
	within(t, "owned games per account", float64(s.OwnedGames)/n, 3.54, 0.35)
	within(t, "memberships per account", float64(s.Memberships)/n, 0.75, 0.20)
}

func TestCalibrationFriendCaps(t *testing.T) {
	cfg := DefaultConfig(30000)
	// Push the friend marginal's tail hard so the caps bite.
	cfg.Friends.TailAlpha = 1.6
	u := MustGenerate(cfg, 7)
	deg := u.FriendCounts()
	over300 := 0
	for i, d := range deg {
		cap := u.Users[i].FriendCap()
		if d > cap {
			t.Fatalf("user %d exceeds friend cap: %d > %d", i, d, cap)
		}
		if d > 300 {
			over300++
		}
	}
	// The Fig 2 dip: users above 250 friends are far rarer than the band
	// just below the cap (raising the cap needs a Facebook link or badge
	// levels), and a cluster sits at/near the cap itself.
	var nearCap, above250 int
	for _, d := range deg {
		if d >= 240 && d <= 250 {
			nearCap++
		}
		if d > 250 {
			above250++
		}
	}
	if nearCap == 0 {
		t.Error("no users near the 250-friend cap; the Fig 2 dip is missing")
	}
	if above250 >= nearCap {
		t.Errorf("users above 250 (%d) not suppressed relative to the cap band (%d)", above250, nearCap)
	}
	_ = over300
}
