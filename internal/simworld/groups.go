package simworld

import (
	"math"
	"sort"
	"strconv"

	"steamstudy/internal/randx"
)

// generateGroups creates the community groups: heavy-tailed sizes, the
// Table 2 type mix among the largest groups, and membership assignment
// that honors each user's copula-drawn group count. Game Server and
// Single Game groups organize around a focal game and recruit
// preferentially among its owners, which is what gives Fig 3 its two
// regimes (focused groups playing few distinct games vs. communities
// playing hundreds).
func generateGroups(cfg Config, rng *randx.RNG, st *genState, u *Universe) {
	grng := rng.Split("groups")
	nUsers := len(u.Users)
	nGroups := int(float64(nUsers)*cfg.GroupsPerUserRatio + 0.5)
	if nGroups < 4 {
		nGroups = 4
	}

	// Total membership stubs from the user side.
	remaining := make([]int, nUsers)
	totalStubs := 0
	for i := 0; i < nUsers; i++ {
		remaining[i] = st.groupsTarget[i]
		totalStubs += remaining[i]
	}
	stubUsers := make([]int32, 0, totalStubs)
	for i := 0; i < nUsers; i++ {
		for s := 0; s < remaining[i]; s++ {
			stubUsers = append(stubUsers, int32(i))
		}
	}
	grng.Shuffle(len(stubUsers), func(i, j int) {
		stubUsers[i], stubUsers[j] = stubUsers[j], stubUsers[i]
	})

	// Heavy-tailed group sizes scaled to consume the stubs. The Pareto
	// draw is bounded: with α < 2 the unbounded version has infinite mean
	// and a single mega-group would swallow every membership stub. The
	// bound mirrors reality — the largest Steam groups hold roughly half
	// a percent of all accounts.
	maxSize := float64(nUsers) / 20
	if maxSize < 10 {
		maxSize = 10
	}
	// Per-group size draws are independent: chunked streams, summed after.
	raw := make([]float64, nGroups)
	forChunks(cfg.Workers, nGroups, grng, "sizes", func(lo, hi int, chrng *randx.RNG) {
		for g := lo; g < hi; g++ {
			raw[g] = chrng.BoundedPareto(cfg.GroupSizeAlpha, 1, maxSize)
		}
	})
	var rawSum float64
	for _, r := range raw {
		rawSum += r
	}
	sizes := make([]int, nGroups)
	for g := range sizes {
		s := int(raw[g] / rawSum * float64(totalStubs))
		if s < 1 {
			s = 1
		}
		sizes[g] = s
	}
	order := make([]int, nGroups)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })

	// Assign types: Table 2 mix for the top 250 (scaled down for small
	// universes), the small-group mix below.
	topN := 250
	if topN > nGroups/2 {
		topN = nGroups / 2
	}
	topPicker := typePicker(cfg.Top250Mix)
	smallPicker := typePicker(cfg.SmallGroupMix)
	focalZipf := randx.NewZipf(ownersIndexTop, 0.45)

	// Type and focal-game proposal pass: per-rank draws are independent
	// (each rank writes only its own group), so chunk over the size-sorted
	// rank order; membership fill below is the sequential reconciliation.
	u.Groups = make([]Group, nGroups)
	forChunks(cfg.Workers, nGroups, grng, "type", func(lo, hi int, chrng *randx.RNG) {
		var nbuf []byte
		for rank := lo; rank < hi; rank++ {
			g := order[rank]
			grp := &u.Groups[g]
			grp.ID = uint64(103582791429521408 + g) // Steam group IDs live in their own 64-bit space
			var t GroupType
			if rank < topN {
				t = topPicker.sample(chrng)
			} else {
				t = smallPicker.sample(chrng)
			}
			grp.Type = t
			grp.FocalGame = -1
			if t == GroupGameServer || t == GroupSingleGame {
				// Organize around a popular game (popularity-rank Zipf).
				// Game Server groups host dedicated servers, so their focal
				// game must be multiplayer; realigning member playtime onto
				// these titles is part of what drives the §6.2 multiplayer
				// playtime share.
				for try := 0; try < 12; try++ {
					pr := focalZipf.Sample(chrng)
					if pr >= len(st.owners) || len(st.owners[pr]) == 0 {
						continue
					}
					gi := gameAtPopRank(st, pr)
					if gi < 0 {
						continue
					}
					if t == GroupGameServer && !u.Games[gi].Multiplayer {
						continue
					}
					grp.FocalGame = gi
					break
				}
			}
			nbuf = append(append(nbuf[:0], grp.Type.String()...), " group "...)
			nbuf = strconv.AppendInt(nbuf, int64(g), 10)
			grp.Name = string(nbuf)
		}
	})

	// Fill memberships, largest groups first so focal recruitment has the
	// widest owner pools available.
	stubPos := 0
	nextStub := func() (int32, bool) {
		for stubPos < len(stubUsers) {
			uidx := stubUsers[stubPos]
			stubPos++
			if remaining[uidx] > 0 {
				return uidx, true
			}
		}
		return 0, false
	}
	memberSet := make(map[int32]struct{}, 1024)
	hardcore := make(map[int]bool)
	clanMember := make(map[int32]bool) // users already in a hardcore clan
	// All member lists live in one slab carved per group (cap = the
	// group's size draw; a group only falls short on stub exhaustion, so
	// the waste is bounded and the per-group appends never reallocate).
	sumSizes := 0
	for _, s := range sizes {
		sumSizes += s
	}
	memberSlab := make([]int32, sumSizes)
	slabOff := 0
	var deferred []int32
	for _, g := range order {
		grp := &u.Groups[g]
		want := sizes[g]
		clear(memberSet)
		deferred = deferred[:0]
		grp.Members = memberSlab[slabOff:slabOff : slabOff+want]
		slabOff += want
		// A minority of focal groups are hardcore clans recruiting almost
		// exclusively among the focal game's owners — the source of
		// Fig 3's "members devote >=90 % of playtime to one game" regime.
		focusProb := cfg.GroupFocusProb
		tries := 4
		// Hardcore clans stay small enough that the focal game's owner
		// pool can actually fill them; giant groups would be diluted by
		// the random fallback below.
		if grp.FocalGame >= 0 && want <= 800 && grng.Bool(0.16) {
			focusProb = 0.995
			tries = 16
			hardcore[g] = true
		}
		for len(grp.Members) < want {
			var uidx int32
			found := false
			if grp.FocalGame >= 0 && grng.Bool(focusProb) {
				// Recruit among owners of the focal game. Hardcore clans
				// recruit owners even when those users have exhausted
				// their membership budget — dedicated players join their
				// clan's group regardless — which costs a small, bounded
				// distortion of the membership marginal.
				pool := st.owners[st.popRank[grp.FocalGame]]
				for try := 0; try < tries; try++ {
					cand := pool[grng.Intn(len(pool))]
					if remaining[cand] > 0 || hardcore[g] {
						if _, dup := memberSet[cand]; dup {
							continue
						}
						// A player belongs to at most one hardcore clan:
						// overlapping clans would steal each other's
						// members' loyalty and dilute every clan's
						// playtime focus.
						if hardcore[g] && clanMember[cand] {
							continue
						}
						uidx, found = cand, true
						break
					}
				}
			}
			if !found {
				cand, ok := nextStub()
				if !ok {
					break // user stubs exhausted
				}
				if _, dup := memberSet[cand]; dup {
					// Already a member of this group: the stub stays valid
					// and is re-queued for a later group.
					deferred = append(deferred, cand)
					continue
				}
				uidx, found = cand, true
			}
			if !found {
				break
			}
			memberSet[uidx] = struct{}{}
			grp.Members = append(grp.Members, uidx)
			remaining[uidx]--
			if hardcore[g] {
				clanMember[uidx] = true
			}
		}
		stubUsers = append(stubUsers, deferred...)
	}

	// Record per-user group lists, slab-backed: count memberships per
	// user, carve one slice each, then fill in group order (the same
	// append order as the naive loop).
	perUser := make([]int32, nUsers)
	totalMembers := 0
	for g := range u.Groups {
		for _, m := range u.Groups[g].Members {
			perUser[m]++
		}
		totalMembers += len(u.Groups[g].Members)
	}
	groupSlab := make([]int32, totalMembers)
	off := 0
	for i := 0; i < nUsers; i++ {
		if c := int(perUser[i]); c > 0 {
			u.Users[i].Groups = groupSlab[off:off : off+c]
			off += c
		}
	}
	for g := range u.Groups {
		for _, m := range u.Groups[g].Members {
			u.Users[m].Groups = append(u.Users[m].Groups, int32(g))
		}
	}

	alignFocalPlaytime(cfg, grng, u, hardcore)
}

// alignFocalPlaytime concentrates the playtime of game-server and
// single-game group members onto their group's focal game: people join a
// Counter-Strike server group because Counter-Strike is what they play.
// This is what produces Fig 3's focused regime (the paper found 4.97 % of
// large groups with >= 90 % of member playtime on one game). Each user's
// total minutes are preserved — minutes only move between that user's own
// library entries — so the calibrated playtime marginals are untouched.
func alignFocalPlaytime(cfg Config, rng *randx.RNG, u *Universe, hardcore map[int]bool) {
	// Ordinary focal groups first, hardcore clans last: a user in several
	// focal groups keeps the alignment of the most dedicated one.
	order := make([]int, 0, len(u.Groups))
	for gi := range u.Groups {
		if !hardcore[gi] {
			order = append(order, gi)
		}
	}
	for gi := range u.Groups {
		if hardcore[gi] {
			order = append(order, gi)
		}
	}
	claimed := make(map[int32]bool) // users already hardcore-aligned
	for _, gi := range order {
		grp := &u.Groups[gi]
		if grp.FocalGame < 0 {
			continue
		}
		// Hardcore clans realign nearly every member onto nearly all of
		// their playtime; ordinary focal groups only a share.
		dedication := 0.35 + 0.4*rng.Float64()
		shareLo, shareHi := 0.65, 0.90
		if hardcore[gi] {
			dedication = 0.999
			shareLo, shareHi = 0.975, 0.998
		}
		for _, m := range grp.Members {
			if !rng.Bool(dedication) {
				continue
			}
			if hardcore[gi] {
				if claimed[m] {
					continue // a member's first clan keeps their loyalty
				}
				claimed[m] = true
			} else if claimed[m] {
				continue
			}
			user := &u.Users[m]
			// Find the focal game in the member's library.
			focal := -1
			for k := range user.Library {
				if user.Library[k].GameIdx == grp.FocalGame {
					focal = k
					break
				}
			}
			if focal == -1 || user.TotalMinutes == 0 {
				continue
			}
			// The member's recent play moves with them: their whole
			// two-week playtime lands on the clan game (otherwise the
			// lifetime >= two-week invariant would pin their old minutes
			// on other titles).
			if user.TwoWeekMinutes > 0 {
				for k := range user.Library {
					user.Library[k].TwoWeekMinutes = 0
				}
				tw := user.TwoWeekMinutes
				if tw > int64(math.MaxInt32) {
					tw = int64(math.MaxInt32)
				}
				user.Library[focal].TwoWeekMinutes = int32(tw)
			}
			// Move a large share of the user's minutes onto the focal
			// game, scaling the rest down proportionally.
			share := shareLo + (shareHi-shareLo)*rng.Float64()
			total := user.TotalMinutes
			focalMinutes := int64(float64(total) * share)
			rest := total - focalMinutes
			var otherSum int64
			for k := range user.Library {
				if k != focal {
					otherSum += user.Library[k].TotalMinutes
				}
			}
			if otherSum > 0 {
				var assigned int64
				for k := range user.Library {
					if k == focal {
						continue
					}
					nm := user.Library[k].TotalMinutes * rest / otherSum
					// Keep the played/unplayed split: played games keep
					// at least a minute.
					if user.Library[k].TotalMinutes > 0 && nm < 1 {
						nm = 1
					}
					if tw := int64(user.Library[k].TwoWeekMinutes); nm < tw {
						nm = tw // per-game invariant: lifetime >= two-week
					}
					user.Library[k].TotalMinutes = nm
					assigned += nm
				}
				focalMinutes = total - assigned
			}
			if focalMinutes < int64(user.Library[focal].TwoWeekMinutes) {
				focalMinutes = int64(user.Library[focal].TwoWeekMinutes)
			}
			user.Library[focal].TotalMinutes = focalMinutes
			// Restore the exact cached total.
			var sum int64
			for k := range user.Library {
				sum += user.Library[k].TotalMinutes
			}
			user.TotalMinutes = sum
		}
	}
}

// gameAtPopRank inverts the popularity rank to a game index.
func gameAtPopRank(st *genState, rank int) int32 {
	for gi, r := range st.popRank {
		if int(r) == rank {
			return int32(gi)
		}
	}
	return -1
}

// groupTypePicker samples GroupTypes from a weight map with a stable
// ordering.
type groupTypePicker struct {
	types []GroupType
	alias *randx.Alias
}

func typePicker(mix map[GroupType]float64) groupTypePicker {
	var p groupTypePicker
	var weights []float64
	for t := GroupType(0); t < groupTypeCount; t++ {
		if w, ok := mix[t]; ok && w > 0 {
			p.types = append(p.types, t)
			weights = append(weights, w)
		}
	}
	p.alias = randx.NewAlias(weights)
	return p
}

func (p groupTypePicker) sample(rng *randx.RNG) GroupType {
	return p.types[p.alias.Sample(rng)]
}
