package simworld

import (
	"math"
	"sort"

	"steamstudy/internal/randx"
)

// ownersIndexTop is how many of the most popular games keep an inverted
// owner index (used by the group generator to build game-focused groups).
const ownersIndexTop = 800

// generateOwnership fills every user's library: which games they own
// (popularity-weighted with the user's price tilt), which of those they
// ever played (per-genre unplayed rates, Fig 5), how lifetime and two-week
// minutes distribute across the library (multiplayer-boosted, §6.2), and
// the account's market value (sum of current storefront prices, the §6
// approximation).
func generateOwnership(cfg Config, rng *randx.RNG, st *genState, u *Universe) {
	orng := rng.Split("ownership")
	cat := st.cat
	nGames := len(cat.games)

	// Popularity ranks for the owner index.
	st.popRank = make([]int32, nGames)
	order := make([]int, nGames)
	for i := range order {
		order[i] = i
	}
	sortByDesc(order, cat.popularity)
	for rank, idx := range order {
		st.popRank[idx] = int32(rank)
	}
	st.owners = make([][]int32, ownersIndexTop)

	// Per-game unplayed probability (genre average).
	unplayed := make([]float64, nGames)
	for i := range cat.games {
		unplayed[i] = gameUnplayedFrac(cfg, &cat.games[i])
	}

	// The per-user fill is independent except for the inverted owner index,
	// which is order-sensitive (the group generator walks owner lists).
	// Chunks record (rank, user) pairs locally in visit order; the pairs
	// are replayed into st.owners in chunk order afterwards, which
	// reproduces the sequential append order exactly.
	type ownerPair struct {
		rank int32
		user int32
	}
	n := len(u.Users)
	chunkOwners := make([][]ownerPair, (n+genChunk-1)/genChunk)
	forChunks(cfg.Workers, n, orng, "chunk", func(lo, hi int, chrng *randx.RNG) {
		ci := lo / genChunk
		scratch := make([]int32, 0, 256)
		weights := make([]float64, 0, 256)
		sampler := librarySampler{bits: make([]uint64, (nGames+63)/64)}
		var recent recentScratch
		// One OwnedGame slab per chunk, sliced per user: libraries are the
		// single largest per-user allocation, and the chunk knows its total
		// size up front from the clamped targets.
		slabN := 0
		for ui := lo; ui < hi; ui++ {
			if t := st.gamesTarget[ui]; t > 0 {
				if t > nGames {
					t = nGames
				}
				slabN += t
			}
		}
		slab := make([]OwnedGame, slabN)
		for ui := lo; ui < hi; ui++ {
			user := &u.Users[ui]
			target := st.gamesTarget[ui]
			if target <= 0 {
				continue
			}
			if target > nGames {
				target = nGames
			}
			tier := tierForPriceU(st.priceU[ui])

			lib := sampler.sample(chrng, cat, tier, target, nGames)
			user.Library = slab[:len(lib):len(lib)]
			slab = slab[len(lib):]
			var value int64
			for k, gi := range lib {
				user.Library[k].GameIdx = gi
				value += cat.games[gi].PriceCents
				if r := st.popRank[gi]; int(r) < ownersIndexTop {
					chunkOwners[ci] = append(chunkOwners[ci], ownerPair{rank: r, user: int32(ui)})
				}
			}
			user.ValueCents = value

			// Decide which owned games were ever played.
			playedProb := func(gi int32) float64 { return 1 - unplayed[gi] }
			if user.Persona.Has(PersonaCollector) {
				playedProb = func(int32) float64 { return cfg.CollectorPlayedFrac }
			}
			scratch = scratch[:0]
			for k := range user.Library {
				gi := user.Library[k].GameIdx
				if st.totalTarget[ui] > 0 && chrng.Bool(playedProb(gi)) {
					scratch = append(scratch, int32(k))
				}
			}
			if st.totalTarget[ui] > 0 && len(scratch) == 0 {
				// Playtime exists, so at least one game must carry it.
				scratch = append(scratch, int32(chrng.Intn(len(user.Library))))
			}
			if len(scratch) == 0 {
				continue
			}

			// Lifetime minutes: a "main game" carries most of the playtime —
			// real libraries are dominated by one title — and the main-game
			// choice is multiplayer-biased, which is what actually moves the
			// §6.2 playtime shares (a multiplicative weight boost washes out
			// against heavy-tailed per-game weights).
			main := pickBoosted(chrng, user, scratch, cat.multiplayer, cfg.MultiplayerTotalBoost)
			mainShare := 1.0
			if len(scratch) > 1 {
				mainShare = 0.55 + 0.4*chrng.Float64()
			}
			total := st.totalTarget[ui]
			mainMinutes := int64(float64(total) * mainShare)
			user.Library[main].TotalMinutes = mainMinutes
			if rest := total - mainMinutes; rest > 0 && len(scratch) > 1 {
				weights = weights[:0]
				var wsum float64
				for _, k := range scratch {
					if k == main {
						weights = append(weights, 0)
						continue
					}
					w := chrng.Gamma(0.5)
					if cat.multiplayer[user.Library[k].GameIdx] {
						w *= cfg.MultiplayerTotalBoost
					}
					weights = append(weights, w)
					wsum += w
				}
				if wsum <= 0 {
					user.Library[main].TotalMinutes += rest
				} else {
					var assigned int64
					for wi, k := range scratch {
						m := int64(float64(rest) * weights[wi] / wsum)
						user.Library[k].TotalMinutes += m
						assigned += m
					}
					user.Library[main].TotalMinutes += rest - assigned
				}
			}
			// Every played game records at least one minute.
			for _, k := range scratch {
				if user.Library[k].TotalMinutes < 1 {
					user.Library[k].TotalMinutes = 1
				}
			}

			// Two-week minutes: concentrated on 1-3 recently played titles,
			// preferring the user's high-lifetime and multiplayer games.
			if tw := st.twoWkTarget[ui]; tw > 0 {
				nRecent := 1 + chrng.Poisson(0.9)
				if nRecent > len(scratch) {
					nRecent = len(scratch)
				}
				// Select "recent" games by weighted sampling without
				// replacement from the played set, multiplayer-boosted; the
				// first selected game dominates the fortnight.
				sel := selectRecent(chrng, user, scratch, cat, cfg, nRecent, &recent)
				weights = weights[:0]
				var wsum float64
				for wi := range sel {
					w := chrng.Gamma(0.8) + 0.05
					if wi == 0 {
						w += 2.5 // dominant recent title
					}
					weights = append(weights, w)
					wsum += w
				}
				var assignedTW int64
				for wi, k := range sel {
					m := int64(float64(tw) * weights[wi] / wsum)
					if m > int64(math.MaxInt32) {
						m = int64(math.MaxInt32)
					}
					user.Library[k].TwoWeekMinutes = int32(m)
					assignedTW += m
				}
				user.Library[sel[0]].TwoWeekMinutes += int32(tw - assignedTW)
				// A game cannot have more two-week than lifetime minutes.
				for _, k := range sel {
					if g := &user.Library[k]; int64(g.TwoWeekMinutes) > g.TotalMinutes {
						g.TotalMinutes = int64(g.TwoWeekMinutes)
					}
				}
			}

			// Cache the sums.
			var tsum, twsum int64
			for k := range user.Library {
				tsum += user.Library[k].TotalMinutes
				twsum += int64(user.Library[k].TwoWeekMinutes)
			}
			user.TotalMinutes = tsum
			user.TwoWeekMinutes = twsum
		}
	})
	// Stitch the owner index in chunk order == user order. Counting first
	// sizes every per-rank list exactly, avoiding append regrowth across
	// hundreds of thousands of entries.
	rankCounts := make([]int, ownersIndexTop)
	for _, pairs := range chunkOwners {
		for _, p := range pairs {
			rankCounts[p.rank]++
		}
	}
	for r, c := range rankCounts {
		if c > 0 {
			st.owners[r] = make([]int32, 0, c)
		}
	}
	for _, pairs := range chunkOwners {
		for _, p := range pairs {
			st.owners[p.rank] = append(st.owners[p.rank], p.user)
		}
	}
}

// pickBoosted selects one played entry uniformly except that multiplayer
// titles carry `boost` times the weight.
func pickBoosted(rng *randx.RNG, user *User, played []int32, mp []bool, boost float64) int32 {
	var wsum float64
	for _, k := range played {
		if mp[user.Library[k].GameIdx] {
			wsum += boost
		} else {
			wsum++
		}
	}
	u := rng.Float64() * wsum
	for _, k := range played {
		w := 1.0
		if mp[user.Library[k].GameIdx] {
			w = boost
		}
		u -= w
		if u <= 0 {
			return k
		}
	}
	return played[len(played)-1]
}

// recentScratch is per-chunk reusable state for selectRecent. The
// returned selection aliases the scratch and is consumed before the next
// call.
type recentScratch struct {
	cands []recentCand
	out   []int32
}

type recentCand struct {
	k   int32
	key float64
}

// selectRecent picks n entries from the played set, biased toward
// multiplayer games and games with large lifetime playtime — the titles a
// user is most likely to have touched in the last two weeks.
func selectRecent(rng *randx.RNG, user *User, played []int32, cat *catalogState, cfg Config, n int, sc *recentScratch) []int32 {
	if n >= len(played) {
		sc.out = append(sc.out[:0], played...)
		return sc.out
	}
	cands := append(sc.cands[:0], make([]recentCand, len(played))...)
	sc.cands = cands
	for i, k := range played {
		gi := user.Library[k].GameIdx
		w := float64(user.Library[k].TotalMinutes) + 30
		if cat.multiplayer[gi] {
			w *= cfg.MultiplayerTwoWeekBoost
		}
		// Weighted sampling without replacement via exponential keys
		// (Efraimidis–Spirakis): the n smallest Exp(1)/w keys win.
		cands[i] = recentCand{k: k, key: rng.ExpFloat64() / w}
	}
	// Partial selection of the n smallest keys.
	for i := 0; i < n; i++ {
		min := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].key < cands[min].key {
				min = j
			}
		}
		cands[i], cands[min] = cands[min], cands[i]
	}
	sc.out = sc.out[:0]
	for i := 0; i < n; i++ {
		sc.out = append(sc.out, cands[i].k)
	}
	return sc.out
}

// librarySampler holds the dedup bitset and output scratch for
// sampleLibrary calls within one chunk. The bitset replaces a per-user
// map (the generator's former top allocation site); set bits are cleared
// through the output list after every draw, so the cost stays
// proportional to the library, not the catalog.
type librarySampler struct {
	bits []uint64
	out  []int32
}

func (s *librarySampler) has(gi int32) bool {
	return s.bits[gi>>6]&(1<<(uint(gi)&63)) != 0
}

func (s *librarySampler) add(gi int32) {
	s.bits[gi>>6] |= 1 << (uint(gi) & 63)
	s.out = append(s.out, gi)
}

// sample draws target distinct games with the tier's price-tilted
// popularity weights; very large libraries (collectors) fall back to a
// uniform subset since they approach the whole catalog anyway. The
// returned slice aliases the sampler's scratch and is consumed before
// the next call. The draw sequence is identical to the historical
// map-based implementation (membership outcomes are the same, so the
// retry loop consumes the same variates).
func (s *librarySampler) sample(rng *randx.RNG, cat *catalogState, tier, target, nGames int) []int32 {
	s.out = s.out[:0]
	if target*4 >= nGames {
		perm := rng.Perm(nGames)
		for i := 0; i < target; i++ {
			s.out = append(s.out, int32(perm[i]))
		}
		return s.out
	}
	defer func() {
		for _, gi := range s.out {
			s.bits[gi>>6] &^= 1 << (uint(gi) & 63)
		}
	}()
	picker := cat.tiltedPickers[tier]
	misses := 0
	for len(s.out) < target {
		gi := int32(picker.Sample(rng))
		if s.has(gi) {
			misses++
			if misses > 40*target+400 {
				// Pathological collision rate (tiny effective catalog):
				// fill the remainder uniformly.
				for len(s.out) < target {
					gi := int32(rng.Intn(nGames))
					if !s.has(gi) {
						s.add(gi)
					}
				}
				return s.out
			}
			continue
		}
		s.add(gi)
	}
	return s.out
}

// tierForPriceU maps the price-preference uniform to a tilt tier.
func tierForPriceU(u float64) int {
	t := int(u * tiltTiers)
	if t >= tiltTiers {
		t = tiltTiers - 1
	}
	return t
}

// gameUnplayedFrac averages the genre unplayed rates for a game's labels.
func gameUnplayedFrac(cfg Config, g *Game) float64 {
	sum, n := 0.0, 0
	for _, spec := range cfg.Genres {
		if g.Genres.Has(spec.Genre) {
			sum += spec.UnplayedFrac
			n++
		}
	}
	if n == 0 {
		return 0.3
	}
	return sum / float64(n)
}

// sortByDesc sorts idx by descending score.
func sortByDesc(idx []int, score []float64) {
	sort.Slice(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
}
