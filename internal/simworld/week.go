package simworld

import (
	"math"
	"sort"

	"steamstudy/internal/randx"
)

// WeekSeries returns the minutes a user played on each of seven
// consecutive days — the Fig 12 measurement. Series are derived
// deterministically from the universe seed and the user index, so the
// week sample can be regenerated without storing 7 columns for every
// user.
//
// The model reproduces the paper's two Fig 12 findings: day-to-day
// playtime within a user varies strongly (users dark on day one are often
// light later and vice versa), while the overall left-to-right gradient
// persists (heavy players remain heavier in expectation). Days are an
// AR(1) process in log intensity around the user's base rate, with
// zero-day dropouts for casual players.
func (u *Universe) WeekSeries(userIdx int) [7]int32 {
	var out [7]int32
	user := &u.Users[userIdx]
	base := float64(user.TwoWeekMinutes) / 14
	if base <= 0 {
		// Users idle in the crawl window can still show sporadic play;
		// most stay at zero all week.
		base = 0
	}
	rng := randx.New(u.Seed).Split("week").Split(user.ID.String())
	if base == 0 {
		if !rng.Bool(0.06) {
			return out
		}
		// A dormant account waking up for a session or two.
		day := rng.Intn(7)
		out[day] = int32(20 + rng.Intn(200))
		if rng.Bool(0.3) {
			out[(day+1+rng.Intn(6))%7] = int32(15 + rng.Intn(120))
		}
		return out
	}
	// Zero-day probability shrinks with engagement.
	pZero := math.Exp(-base / 45)
	ar := 0.0
	const rho, sigma = 0.55, 0.9
	for d := 0; d < 7; d++ {
		ar = rho*ar + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		if rng.Bool(pZero) {
			continue
		}
		// Divide by the non-zero-day probability so the expected weekly
		// total matches the user's base rate.
		minutes := base / (1 - pZero) * math.Exp(sigma*ar-sigma*sigma/2)
		if minutes > 24*60 {
			minutes = 24 * 60
		}
		if minutes < 1 {
			minutes = 1
		}
		out[d] = int32(minutes)
	}
	// Idlers saturate the week.
	if user.Persona.Has(PersonaIdler) {
		for d := 0; d < 7; d++ {
			out[d] = int32(24*60) - int32(rng.Intn(180))
		}
	}
	return out
}

// SampleWeekUsers returns the user indices of the Fig 12 sample: users
// ordered by lifetime playtime, thinned to a uniform frac (the paper used
// 0.5 %), preserving the lifetime-playtime ordering.
func (u *Universe) SampleWeekUsers(frac float64) []int {
	if frac <= 0 || frac > 1 {
		frac = 0.005
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	order := make([]int, len(u.Users))
	for i := range order {
		order[i] = i
	}
	// Order by lifetime minutes (the paper sampled uniformly across the
	// total-minutes ordering).
	sortByTotalMinutes(u, order)
	var out []int
	for i := 0; i < len(order); i += step {
		out = append(out, order[i])
	}
	return out
}

func sortByTotalMinutes(u *Universe, order []int) {
	sort.Slice(order, func(a, b int) bool {
		return u.Users[order[a]].TotalMinutes < u.Users[order[b]].TotalMinutes
	})
}
