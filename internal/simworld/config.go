package simworld

import (
	"fmt"

	"steamstudy/internal/dists"
)

// Marginal calibrates one user attribute: a point mass at zero (dead or
// disengaged accounts) plus a spliced quantile function through the
// paper's published percentiles with a Pareto tail.
type Marginal struct {
	// ZeroFrac is the fraction of users with attribute exactly zero.
	ZeroFrac float64
	// Min is the smallest nonzero value.
	Min float64
	// Anchors are (probability-within-nonzero, value) calibration points,
	// ascending.
	Anchors []dists.Anchor
	// TailAlpha is the Pareto exponent beyond the last anchor.
	TailAlpha float64
	// Max caps the tail (0 = uncapped).
	Max float64
}

// build compiles the marginal into its quantile function.
func (m Marginal) build() (dists.ZeroInflated, error) {
	q, err := dists.NewQuantileSpline(m.Min, m.Anchors, m.TailAlpha, m.Max)
	if err != nil {
		return dists.ZeroInflated{}, err
	}
	return dists.ZeroInflated{ZeroFrac: m.ZeroFrac, Tail: q}, nil
}

// GenreSpec calibrates one genre's catalog share and behaviour.
type GenreSpec struct {
	Genre Genre
	// CatalogFrac is the fraction of catalog products carrying the label
	// (labels overlap; Action is 38.1 % per §5).
	CatalogFrac float64
	// PopularityBoost multiplies the popularity weight of games with this
	// label, steering ownership and playtime shares (Figs 5, 9).
	PopularityBoost float64
	// UnplayedFrac is the probability an owned game of this genre is never
	// played (Fig 5: 41.49 % for Action, 28.86 % Strategy, ...).
	UnplayedFrac float64
	// AvgCompletion is the mean achievement completion percentage for the
	// genre (§9: Adventure 19 %, Strategy 11 %).
	AvgCompletion float64
	// AchievementScale scales how many achievements games of this genre
	// offer (§9: Strategy offers few).
	AchievementScale float64
}

// SocialWeights are the loadings of the wiring latent on the realized
// attribute z-scores (plus independent noise). The "Value" component is a
// proxy for account market value (library size combined with price
// preference), since the actual value is only known after ownership
// assignment.
type SocialWeights struct {
	Value   float64
	Friends float64
	Total   float64
	TwoWeek float64
	Groups  float64
	Noise   float64
}

// CountrySpec is one Table 1 row.
type CountrySpec struct {
	Code string
	// Frac is the share among users who report a country.
	Frac float64
}

// Config holds every calibration parameter of the synthetic universe.
// DefaultConfig returns values tuned to the paper; tests assert the tuning.
type Config struct {
	// Users is the population size (the paper's 108.7 M, scaled).
	Users int
	// CatalogSize is the number of storefront products (paper: 6,156).
	CatalogSize int

	// Workers bounds the generation worker pool (<= 0 means one worker
	// per logical CPU, 1 forces the serial path). It is a throughput
	// knob, not part of the universe definition: generation partitions
	// each stage's index space into fixed-size chunks with their own
	// split RNG streams, so the output is byte-identical for any value.
	// Universe.Config records it as 0 to keep artifacts comparable.
	Workers int

	// Marginals for the five copula-driven attributes.
	Friends    Marginal
	GamesOwned Marginal
	Groups     Marginal
	// TotalPlay is lifetime playtime in minutes.
	TotalPlay Marginal
	// TwoWeekPlay is the rolling two-week playtime in minutes (max 20160).
	TwoWeekPlay Marginal

	// Spearman is the target rank-correlation matrix over the copula
	// dimensions [friends, games, groups, total, twoweek, social, price].
	// Only the upper triangle is read; it is mirrored automatically.
	Spearman [copulaDim][copulaDim]float64

	// HomophilyNoise is the Laplace scale, as a fraction of the stub-array
	// length, used when pairing friendship stubs: smaller values produce
	// stronger homophily.
	HomophilyNoise float64
	// SocialWeights combine the realized attribute z-scores into the
	// friendship-wiring key; they control the Fig 11 homophily ordering
	// (value strongest at ρ=.77, friends .62, playtime .61, games .45).
	SocialWeights SocialWeights
	// DomesticWiringFrac is the share of each user's friendships wired
	// within their latent country (§4.1: 69.66 % of reported-country
	// friendships are domestic).
	DomesticWiringFrac float64

	// FacebookLinkedFrac is the share of accounts with the 300-friend cap.
	FacebookLinkedFrac float64
	// BadgeLevelP is the geometric parameter for badge levels (each level
	// is +5 friend slots).
	BadgeLevelP float64

	// CollectorFrac is the share of collector accounts; CollectorUptick
	// is the [lo, hi] library-size band of the §5 anomaly (1268-1290).
	CollectorFrac         float64
	CollectorUptickLo     int
	CollectorUptickHi     int
	CollectorUptickShare  float64 // share of collectors inside the band
	CollectorMedianGames  float64
	CollectorPlayedFrac   float64 // fraction of a collector's library ever played
	IdlerFrac             float64 // §6.1 two-week maximizers
	AchievementHunterFrac float64
	ValveEmployeeFrac     float64

	// CountryReportFrac and CityReportFrac are the §2.1/§4.1 shares of
	// users reporting location (10.7 % and 4.0 %).
	CountryReportFrac float64
	CityReportFrac    float64
	// Countries is the Table 1 mix among reporters; OtherCountries is the
	// number of synthetic "long tail" countries sharing OtherFrac.
	Countries      []CountrySpec
	OtherCountries int
	OtherFrac      float64
	// CitiesPerCountry is the number of cities per country for the city
	// locality statistic (§4.1: 79.84 % of friendships span cities).
	CitiesPerCountry int

	// Genres is the catalog genre mix.
	Genres []GenreSpec
	// MultiplayerFrac is the share of games with a multiplayer component
	// (§6.2: 48.7 %).
	MultiplayerFrac float64
	// MultiplayerTotalBoost and MultiplayerTwoWeekBoost tilt playtime
	// allocation toward multiplayer titles to reproduce the §6.2 shares
	// (57.7 % of total and 67.7 % of two-week playtime multiplayer-only).
	// Calibrated jointly with the genre-multiplayer affinity in the
	// catalog deal (Action/MMO/free-to-play titles claim multiplayer
	// slots preferentially), which itself shifts playtime onto
	// multiplayer titles through their higher popularity.
	MultiplayerTotalBoost   float64
	MultiplayerTwoWeekBoost float64

	// PriceMeanLog/PriceSigmaLog parametrize the lognormal storefront
	// price model (dollars); PriceMax caps it.
	PriceMeanLog  float64
	PriceSigmaLog float64
	PriceMax      float64
	// FreeFrac is the share of free-to-play (price 0) products.
	FreeFrac float64
	// PopularityZipf is the exponent of game popularity by quality rank.
	// (The per-user price-preference tilt that decouples market value from
	// raw library size — needed for the Fig 11 homophily ordering — is
	// quantized into fixed tiers; see catalog.go tiltTiers.)
	PopularityZipf float64

	// Groups settings.
	GroupsPerUserRatio float64 // paper: 3.0M groups / 108.7M users
	GroupSizeAlpha     float64 // Pareto exponent of group sizes
	GroupFocusProb     float64 // probability a focal-game group member owns the focal game
	// Top250Mix is the Table 2 type mix for the largest groups.
	Top250Mix map[GroupType]float64
	// SmallGroupMix is the type mix for the remaining groups.
	SmallGroupMix map[GroupType]float64

	// Achievements settings (§9).
	AchievementsNoneFrac float64 // games offering zero achievements
	AchievementsMedLog   float64 // lognormal median (log) of offered counts
	AchievementsSigmaLog float64
	AchievementsQualityB float64 // loading of log-popularity on offered counts (drives the 1-90 correlation)
	AchievementSpamFrac  float64 // low-quality games with 90+ achievements
	AchievementsMax      int     // hard cap (paper: 1629)
	CompletionSigma      float64 // spread of per-game average completion

	// UserGrowthRate is the exponential account-growth rate per year used
	// for creation dates (Fig 1).
	UserGrowthRate float64
	// FriendDelayMeanDays is the mean delay from joint presence to
	// befriending, shaping the Fig 1 friendship curve.
	FriendDelayMeanDays float64
}

// copulaDim indexes the latent copula dimensions.
const (
	dimFriends = iota
	dimGames
	dimGroups
	dimTotal
	dimTwoWeek
	dimSocial
	dimPrice
	copulaDim
)

// DefaultConfig returns the calibration used throughout the repository;
// the values are tuned so the generated universe reproduces the paper's
// Table 3 percentiles, §6 shares, §7 correlations and Fig 5/9/10 genre
// structure (see the calibration tests).
func DefaultConfig(users int) Config {
	c := Config{
		Users:       users,
		CatalogSize: 6156,

		// The paper's aggregate totals (196.37 M friendships, 384.3 M owned
		// games, 81.3 M memberships over 108.7 M accounts) force large
		// zero masses: Table 3's nonzero medians are only consistent with
		// the totals if the percentile rows describe users with a nonzero
		// attribute. The zero fractions below reconcile both.
		Friends: Marginal{
			ZeroFrac: 0.71, // mean degree over all accounts ≈ 3.6
			Min:      1,
			Anchors: []dists.Anchor{
				{P: 0.50, V: 4}, {P: 0.80, V: 15}, {P: 0.90, V: 29},
				{P: 0.95, V: 50}, {P: 0.99, V: 122},
			},
			TailAlpha: 2.6,
			Max:       1500, // caps are applied separately per user
		},
		GamesOwned: Marginal{
			ZeroFrac: 0.66, // mean library over all accounts ≈ 3.5
			Min:      1,
			Anchors: []dists.Anchor{
				{P: 0.50, V: 4}, {P: 0.80, V: 10}, {P: 0.90, V: 21},
				{P: 0.95, V: 39}, {P: 0.99, V: 115},
			},
			TailAlpha: 2.15,
			Max:       2200,
		},
		Groups: Marginal{
			ZeroFrac: 0.88, // mean memberships over all accounts ≈ 0.75
			Min:      1,
			Anchors: []dists.Anchor{
				{P: 0.50, V: 2}, {P: 0.80, V: 7}, {P: 0.90, V: 13},
				{P: 0.95, V: 22}, {P: 0.99, V: 62},
			},
			TailAlpha: 2.4,
			Max:       3000,
		},
		// TotalPlay.ZeroFrac is the fraction of game OWNERS who never
		// played (owners-who-played ≈ 88 %, cf. Fig 4's owned-vs-played
		// gap); the anchors are Table 3's playtime row, which describes
		// users with playtime.
		TotalPlay: Marginal{
			ZeroFrac: 0.12,
			Min:      1,
			Anchors: []dists.Anchor{
				{P: 0.50, V: 34 * 60},
				{P: 0.80, V: 336.4 * 60},
				{P: 0.90, V: 739.8 * 60},
				{P: 0.95, V: 1233.9 * 60},
				{P: 0.99, V: 2660.1 * 60},
			},
			TailAlpha: 2.9,
			Max:       10 * 365 * 24 * 60, // ten years of minutes
		},
		// TwoWeekPlay.ZeroFrac is the fraction of PLAYERS idle in the
		// crawl fortnight, chosen so that over all accounts ~80.6 % report
		// zero (§6.1). The anchors place Table 3's over-all percentiles
		// (p90 = 8.7 h, etc.) and Fig 7's nonzero 80th (32.05 h) at their
		// within-nonzero positions.
		TwoWeekPlay: Marginal{
			ZeroFrac: 0.352,
			Min:      1,
			Anchors: []dists.Anchor{
				{P: (0.90 - 0.806) / 0.194, V: 8.7 * 60},
				{P: (0.95 - 0.806) / 0.194, V: 25.5 * 60},
				{P: 0.80, V: 32.05 * 60},
				{P: (0.99 - 0.806) / 0.194, V: 70.8 * 60},
			},
			TailAlpha: 2.8,
			Max:       14 * 24 * 60, // 336 hours
		},

		HomophilyNoise:     0.003,
		DomesticWiringFrac: 0.93,
		SocialWeights: SocialWeights{
			Value:   0.75,
			Friends: 0.52,
			Total:   0.36,
			TwoWeek: 0.08,
			Groups:  0.08,
			Noise:   0.18,
		},

		FacebookLinkedFrac: 0.08,
		BadgeLevelP:        0.55,

		CollectorFrac:         0.0004,
		CollectorUptickLo:     1268,
		CollectorUptickHi:     1290,
		CollectorUptickShare:  0.22,
		CollectorMedianGames:  600,
		CollectorPlayedFrac:   0.25,
		IdlerFrac:             0.0001,
		AchievementHunterFrac: 0.01,
		ValveEmployeeFrac:     0.00002,

		CountryReportFrac: 0.107,
		CityReportFrac:    0.040,
		Countries: []CountrySpec{
			{"US", 0.2021}, {"RU", 0.1018}, {"DE", 0.0756}, {"GB", 0.0522},
			{"FR", 0.0519}, {"BR", 0.0395}, {"CA", 0.0381}, {"PL", 0.0320},
			{"AU", 0.0290}, {"SE", 0.0234},
		},
		OtherCountries:   226,
		OtherFrac:        0.3544,
		CitiesPerCountry: 40,

		Genres: []GenreSpec{
			{GenreAction, 0.381, 1.65, 0.4149, 14, 1.0},
			{GenreStrategy, 0.180, 1.10, 0.2886, 11, 0.55},
			{GenreIndie, 0.280, 0.85, 0.3230, 14, 1.1},
			{GenreRPG, 0.120, 1.05, 0.2426, 15, 1.2},
			{GenreAdventure, 0.160, 0.90, 0.3000, 19, 1.0},
			{GenreSimulation, 0.110, 0.80, 0.3100, 13, 0.9},
			{GenreCasual, 0.140, 0.70, 0.3300, 16, 0.8},
			{GenreRacing, 0.050, 0.75, 0.3000, 13, 0.9},
			{GenreSports, 0.040, 0.80, 0.2900, 12, 0.9},
			{GenreFreeToPlay, 0.060, 1.80, 0.3500, 12, 0.7},
			{GenreMMO, 0.030, 1.40, 0.2800, 10, 0.8},
		},
		MultiplayerFrac:         0.487,
		MultiplayerTotalBoost:   1.5,
		MultiplayerTwoWeekBoost: 4.5,

		PriceMeanLog:   2.20, // median ≈ $9.03
		PriceSigmaLog:  0.80,
		PriceMax:       79.99,
		FreeFrac:       0.06,
		PopularityZipf: 1.05,

		GroupsPerUserRatio: 0.0276,
		GroupSizeAlpha:     1.85,
		GroupFocusProb:     0.70,
		Top250Mix: map[GroupType]float64{
			GroupGameServer:      0.456,
			GroupSingleGame:      0.204,
			GroupGamingCommunity: 0.172,
			GroupSpecialInterest: 0.140,
			GroupSteam:           0.016,
			GroupPublisher:       0.012,
		},
		SmallGroupMix: map[GroupType]float64{
			GroupGameServer:      0.18,
			GroupSingleGame:      0.34,
			GroupGamingCommunity: 0.22,
			GroupSpecialInterest: 0.24,
			GroupSteam:           0.002,
			GroupPublisher:       0.018,
		},

		AchievementsNoneFrac: 0.22,
		AchievementsMedLog:   3.26, // recentered so the realized median ≈ 24 after the quality loading
		AchievementsSigmaLog: 0.62,
		AchievementsQualityB: 0.55,
		AchievementSpamFrac:  0.012,
		AchievementsMax:      1629,
		CompletionSigma:      0.45,

		UserGrowthRate:      0.42,
		FriendDelayMeanDays: 420,
	}
	// §7 target Spearman correlations (upper triangle; unlisted pairs 0).
	set := func(i, j int, rho float64) {
		c.Spearman[i][j] = rho
		c.Spearman[j][i] = rho
	}
	// Latent targets are deliberately ABOVE the paper's §7 values: the
	// zero-inflated marginals tie large blocks of users at zero, which
	// attenuates measured Spearman by roughly sqrt of the nonzero
	// fractions. These latents are tuned so the measured correlations on
	// the generated population land at the published numbers (asserted by
	// the calibration tests).
	set(dimFriends, dimGames, 0.63)
	set(dimFriends, dimGroups, 0.60)
	set(dimFriends, dimTotal, 0.35)
	set(dimFriends, dimTwoWeek, 0.30)
	set(dimGames, dimGroups, 0.45)
	set(dimGames, dimTotal, 0.35)
	set(dimGames, dimTwoWeek, 0.50)
	set(dimGroups, dimTotal, 0.25)
	set(dimGroups, dimTwoWeek, 0.20)
	set(dimTotal, dimTwoWeek, 0.93)
	set(dimGames, dimPrice, 0.20)
	set(dimTotal, dimPrice, 0.15)
	// The social wiring key is NOT a copula dimension (its row stays
	// zero): it is computed from the realized attribute ranks with the
	// SocialWeights below, which escapes the positive-definiteness
	// ceiling on how strongly one latent can load on many attributes.
	for i := 0; i < copulaDim; i++ {
		c.Spearman[i][i] = 1
	}
	return c
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	if c.Users < 100 {
		return fmt.Errorf("simworld: need at least 100 users, have %d", c.Users)
	}
	if c.CatalogSize < 10 {
		return fmt.Errorf("simworld: need at least 10 catalog products, have %d", c.CatalogSize)
	}
	for name, m := range map[string]Marginal{
		"friends": c.Friends, "games": c.GamesOwned, "groups": c.Groups,
		"total": c.TotalPlay, "twoweek": c.TwoWeekPlay,
	} {
		if m.ZeroFrac < 0 || m.ZeroFrac >= 1 {
			return fmt.Errorf("simworld: %s zero fraction %v out of [0,1)", name, m.ZeroFrac)
		}
		if _, err := m.build(); err != nil {
			return fmt.Errorf("simworld: %s marginal: %v", name, err)
		}
	}
	if c.MultiplayerFrac < 0 || c.MultiplayerFrac > 1 {
		return fmt.Errorf("simworld: multiplayer fraction %v out of range", c.MultiplayerFrac)
	}
	if len(c.Genres) == 0 {
		return fmt.Errorf("simworld: no genres configured")
	}
	if c.HomophilyNoise <= 0 {
		return fmt.Errorf("simworld: homophily noise must be positive")
	}
	return nil
}
