package simworld

import (
	"math"

	"steamstudy/internal/randx"
)

// Evolve produces the second snapshot of §8: roughly a year of growth
// applied in place to a deep copy of the universe. The §8 findings the
// model reproduces:
//
//   - the tail inflates drastically (top library 2,148 → 3,919 games; top
//     account value $24,315 → $46,634) because acquisition accelerates
//     with library size (collectors keep collecting);
//   - the 80th percentiles barely move (10 → 15 games, $150.88 → $224.93);
//   - lifetime playtime accrues in proportion to recent engagement;
//   - distribution classifications stay unchanged (verified in the
//     analysis, not hard-coded).
func Evolve(u *Universe) *Universe {
	cfg := u.Config
	rng := randx.New(u.Seed).Split("evolve")
	out := &Universe{
		Seed:        u.Seed,
		Config:      cfg,
		CollectedAt: SecondSnapshotEnd,
		Games:       u.Games, // the catalog reference is shared
		Groups:      u.Groups,
		Friendships: u.Friendships,
	}
	out.Users = make([]User, len(u.Users))
	copy(out.Users, u.Users)

	nGames := len(u.Games)
	yearFrac := float64(SecondSnapshotEnd-u.CollectedAt) / (365.25 * 24 * 3600)
	twoWkQ, err := cfg.TwoWeekPlay.build()
	if err != nil {
		// The source universe validated this config; a failure here is a
		// programming error.
		panic(err)
	}

	for i := range out.Users {
		user := &out.Users[i]
		// Copy the library so the first snapshot stays intact.
		lib := make([]OwnedGame, len(user.Library))
		copy(lib, user.Library)
		user.Library = lib

		// Acquisition: superlinear in current library size, which is what
		// makes the tail run away from the 80th percentile. g(n) ≈
		// 0.45·n^1.1 new games per year: g(10) ≈ 6 (80th pct 10 → ~15,
		// §8), g(2200) ≈ +95 % (top library nearly doubles).
		owned := len(user.Library)
		var newGames int
		if owned > 0 {
			newGames = rng.Poisson(0.45 * math.Pow(float64(owned), 1.1) * yearFrac)
		} else if rng.Bool(0.08 * yearFrac) {
			newGames = 1 + rng.Geometric(0.5)
		}
		if owned+newGames > nGames {
			newGames = nGames - owned
		}
		if newGames > 0 {
			ownedSet := make(map[int32]struct{}, owned+newGames)
			for _, g := range user.Library {
				ownedSet[g.GameIdx] = struct{}{}
			}
			for added, tries := 0, 0; added < newGames && tries < newGames*30+100; tries++ {
				gi := int32(rng.Intn(nGames))
				if _, dup := ownedSet[gi]; dup {
					continue
				}
				ownedSet[gi] = struct{}{}
				user.Library = append(user.Library, OwnedGame{GameIdx: gi})
				user.ValueCents += u.Games[gi].PriceCents
				added++
			}
		}

		// Lifetime playtime accrues in proportion to recent engagement.
		accrued := int64(float64(user.TwoWeekMinutes) / 14 * 365.25 * yearFrac *
			(0.5 + rng.Float64()))
		if accrued > 0 && len(user.Library) > 0 {
			// Credit the largest existing titles.
			best := 0
			for k := range user.Library {
				if user.Library[k].TotalMinutes > user.Library[best].TotalMinutes {
					best = k
				}
			}
			user.Library[best].TotalMinutes += accrued
			user.TotalMinutes += accrued
		}

		// Two-week playtime is a fresh rolling window: redraw it with the
		// same marginal, correlated with the old value through rank
		// persistence (users keep their habits, mostly).
		oldTW := float64(user.TwoWeekMinutes)
		persist := rng.Bool(0.7)
		var newTW int64
		if persist && oldTW > 0 {
			newTW = int64(oldTW * math.Exp(0.5*rng.NormFloat64()))
		} else {
			newTW = int64(twoWkQ.Quantile(rng.Float64()))
		}
		if max := int64(14 * 24 * 60); newTW > max {
			newTW = max
		}
		setTwoWeek(user, newTW, rng)
	}
	return out
}

// setTwoWeek rewrites a user's two-week minutes onto their most-played
// titles, keeping per-game invariants (two-week <= lifetime is restored by
// bumping lifetime, mirroring reality: the new fortnight's play counts
// toward the total).
func setTwoWeek(user *User, minutes int64, rng *randx.RNG) {
	for k := range user.Library {
		user.Library[k].TwoWeekMinutes = 0
	}
	user.TwoWeekMinutes = 0
	if minutes <= 0 || len(user.Library) == 0 {
		return
	}
	// Spread over one or two titles.
	k1 := rng.Intn(len(user.Library))
	split := minutes
	if len(user.Library) > 1 && rng.Bool(0.35) {
		k2 := rng.Intn(len(user.Library))
		if k2 != k1 {
			part := minutes / 3
			applyTwoWeek(&user.Library[k2], part)
			split = minutes - part
		}
	}
	applyTwoWeek(&user.Library[k1], split)
	var tot, tw int64
	for k := range user.Library {
		tot += user.Library[k].TotalMinutes
		tw += int64(user.Library[k].TwoWeekMinutes)
	}
	user.TotalMinutes = tot
	user.TwoWeekMinutes = tw
}

func applyTwoWeek(g *OwnedGame, minutes int64) {
	if minutes > int64(math.MaxInt32) {
		minutes = int64(math.MaxInt32)
	}
	g.TwoWeekMinutes = int32(minutes)
	if g.TotalMinutes < minutes {
		g.TotalMinutes = minutes
	}
}
