package simworld

import (
	"steamstudy/internal/randx"
)

// Generate synthesizes a complete universe from the configuration and
// seed. Generation is fully deterministic in (cfg, seed) and proceeds
// bottom-up: catalog, users (copula attribute draws), friendships,
// ownership/playtimes, groups.
//
// cfg.Workers bounds the generation pool. Every stage partitions its
// index space into fixed-size chunks, each drawing from its own split
// RNG stream and writing only index-addressed state, with chunk-local
// results stitched in index order; the coupled stages (friendship
// wiring, group membership) run a parallel proposal pass followed by a
// sequential reconciliation pass. The generated universe is therefore
// byte-identical for every worker count, and the stored Config records
// Workers as 0 so universes generated at different worker counts compare
// equal with reflect.DeepEqual.
func Generate(cfg Config, seed int64) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(seed)
	storedCfg := cfg
	storedCfg.Workers = 0
	u := &Universe{
		Seed:        seed,
		Config:      storedCfg,
		CollectedAt: FirstSnapshotEnd,
	}
	cat := generateCatalog(cfg, rng.Split("catalog"))
	u.Games = cat.games
	st, err := generateUsers(cfg, rng, cat, u)
	if err != nil {
		return nil, err
	}
	generateFriendships(cfg, rng, st, u)
	generateOwnership(cfg, rng, st, u)
	generateGroups(cfg, rng, st, u)
	return u, nil
}

// MustGenerate is Generate that panics on error; for tests and examples
// with known-good configurations.
func MustGenerate(cfg Config, seed int64) *Universe {
	u, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return u
}

// TotalFriendships returns the number of bidirectional friendship edges.
func (u *Universe) TotalFriendships() int { return len(u.Friendships) }

// Stats returns quick aggregate counts for logging.
type UniverseStats struct {
	Users       int
	Games       int
	Groups      int
	Friendships int
	Memberships int
	OwnedGames  int64
	TotalYears  float64
	ValueTotal  float64
}

// Stats computes headline aggregates (the §1 bullet numbers, scaled).
func (u *Universe) Stats() UniverseStats {
	s := UniverseStats{
		Users:       len(u.Users),
		Games:       len(u.Games),
		Groups:      len(u.Groups),
		Friendships: len(u.Friendships),
	}
	for i := range u.Users {
		s.OwnedGames += int64(len(u.Users[i].Library))
		s.Memberships += len(u.Users[i].Groups)
		s.TotalYears += float64(u.Users[i].TotalMinutes) / (60 * 24 * 365.25)
		s.ValueTotal += float64(u.Users[i].ValueCents) / 100
	}
	return s
}
