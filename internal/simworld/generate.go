package simworld

import (
	"steamstudy/internal/randx"
)

// Generate synthesizes a complete universe from the configuration and
// seed. Generation is fully deterministic in (cfg, seed) and proceeds
// bottom-up: catalog, users (copula attribute draws), friendships,
// ownership/playtimes, groups.
func Generate(cfg Config, seed int64) (*Universe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(seed)
	u := &Universe{
		Seed:        seed,
		Config:      cfg,
		CollectedAt: FirstSnapshotEnd,
	}
	cat := generateCatalog(cfg, rng.Split("catalog"))
	u.Games = cat.games
	st, err := generateUsers(cfg, rng, cat, u)
	if err != nil {
		return nil, err
	}
	generateFriendships(cfg, rng, st, u)
	generateOwnership(cfg, rng, st, u)
	generateGroups(cfg, rng, st, u)
	return u, nil
}

// MustGenerate is Generate that panics on error; for tests and examples
// with known-good configurations.
func MustGenerate(cfg Config, seed int64) *Universe {
	u, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return u
}

// TotalFriendships returns the number of bidirectional friendship edges.
func (u *Universe) TotalFriendships() int { return len(u.Friendships) }

// Stats returns quick aggregate counts for logging.
type UniverseStats struct {
	Users       int
	Games       int
	Groups      int
	Friendships int
	Memberships int
	OwnedGames  int64
	TotalYears  float64
	ValueTotal  float64
}

// Stats computes headline aggregates (the §1 bullet numbers, scaled).
func (u *Universe) Stats() UniverseStats {
	s := UniverseStats{
		Users:       len(u.Users),
		Games:       len(u.Games),
		Groups:      len(u.Groups),
		Friendships: len(u.Friendships),
	}
	for i := range u.Users {
		s.OwnedGames += int64(len(u.Users[i].Library))
		s.Memberships += len(u.Users[i].Groups)
		s.TotalYears += float64(u.Users[i].TotalMinutes) / (60 * 24 * 365.25)
		s.ValueTotal += float64(u.Users[i].ValueCents) / 100
	}
	return s
}
