package simworld

import (
	"math"

	"steamstudy/internal/randx"
)

// Per-player achievement statistics. The paper's §9 closes with: "Further
// assessment of the existence and nature of the achievement hunter group
// requires access to individual players' achievement statistics instead
// of aggregations" — the API only exposed global completion percentages.
// The simulator has no such restriction, so this file implements that
// future work: per-player unlock counts consistent with the global
// percentages, with the achievement-hunter persona materialized as an
// explicit completion boost.

// PlayerAchievements returns how many of a game's achievements the user
// has unlocked. Deterministic in (universe seed, user, game), so the API
// server can answer GetPlayerAchievements queries without storing
// per-(user, game) state.
//
// The model: the k-th achievement of a game is completed by its published
// global fraction of owners; an individual owner's unlock probability
// scales with how much of the game they played relative to other owners
// (more playtime, more unlocks) and is boosted for achievement hunters,
// who complete close to everything they touch. Unlocks are monotone in
// the achievement index: a player who has the rare 10th achievement also
// has the easier ones before it, matching how games gate progression.
func (u *Universe) PlayerAchievements(userIdx int, gameIdx int) int {
	user := &u.Users[userIdx]
	game := &u.Games[gameIdx]
	n := len(game.Achievements)
	if n == 0 {
		return 0
	}
	var owned *OwnedGame
	for k := range user.Library {
		if int(user.Library[k].GameIdx) == gameIdx {
			owned = &user.Library[k]
			break
		}
	}
	if owned == nil || owned.TotalMinutes == 0 {
		return 0
	}
	rng := randx.New(u.Seed).Split("player-ach").
		Split(user.ID.String()).Split(game.Name)

	// Engagement factor: playtime on this game relative to a nominal
	// completion budget (~25 hours); saturates at 3x. The normalization
	// keeps the population mean boost near 1, so per-player unlock rates
	// stay consistent with the published global completion percentages.
	engagement := math.Min(3, float64(owned.TotalMinutes)/(25*60))
	boost := (0.35 + engagement) / 0.6
	hunter := user.Persona.Has(PersonaAchievementHunter)
	// Walk the list in difficulty order; stop at the first locked one.
	unlocked := 0
	for _, a := range game.Achievements {
		p := a.GlobalPercent / 100 * boost
		if hunter {
			// Hunters grind past rarity: each next achievement falls with
			// near-constant probability regardless of how few owners have
			// it ("I like to go for achievements just to elongate the
			// game", §9).
			p = 0.97
		}
		if p > 0.995 {
			p = 0.995
		}
		if !rng.Bool(p) {
			break
		}
		unlocked++
	}
	return unlocked
}

// PlayerCompletionRates returns, for every (user, owned-and-played game)
// pair in a uniform user sample, the player's completion fraction of that
// game's achievement list. This is the §9 future-work measurement: its
// distribution is what separates achievement hunters (a mass near 1.0)
// from ordinary players (mass near the global averages).
func (u *Universe) PlayerCompletionRates(sampleFrac float64) (rates []float64, hunterRates []float64) {
	step := 1
	if sampleFrac > 0 && sampleFrac < 1 {
		step = int(1 / sampleFrac)
	}
	for i := 0; i < len(u.Users); i += step {
		user := &u.Users[i]
		hunter := user.Persona.Has(PersonaAchievementHunter)
		for _, og := range user.Library {
			if og.TotalMinutes == 0 {
				continue
			}
			n := len(u.Games[og.GameIdx].Achievements)
			if n == 0 {
				continue
			}
			got := u.PlayerAchievements(i, int(og.GameIdx))
			rate := float64(got) / float64(n)
			rates = append(rates, rate)
			if hunter {
				hunterRates = append(hunterRates, rate)
			}
		}
	}
	return rates, hunterRates
}
