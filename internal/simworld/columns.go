package simworld

import "sort"

// Columns is a structure-of-arrays view of the per-user universe: the
// handful of scalar attributes the paper's tables run over, packed into
// parallel slices so a paper-scale pass touches a few flat arrays instead
// of chasing per-user pointers. Index i corresponds to u.Users[i]; the
// variable-length genre histogram is CSR-encoded, and the label tables
// are interned (one string per distinct genre/country).
type Columns struct {
	TotalMinutes   []int64
	TwoWeekMinutes []int64
	LibrarySize    []int32
	// AccountAge is seconds between account creation and the crawl end.
	AccountAge   []int64
	FriendDegree []int32
	GroupCount   []int32

	// GenreOffsets/GenreCells hold each user's owned-games-per-genre
	// histogram: user i's cells are GenreCells[GenreOffsets[i]:
	// GenreOffsets[i+1]], each packing genreIndex<<24 | count. Genre
	// indexes follow the Genres table (bit order of GenreNames).
	GenreOffsets []int64
	GenreCells   []uint32

	// Genres and Countries are the interned label tables: every label the
	// columns refer to, each allocated exactly once.
	Genres    []string
	Countries []string
}

// GenreCell accessors for the packed histogram entries.
func GenreCellIndex(cell uint32) int  { return int(cell >> 24) }
func GenreCellCount(cell uint32) int { return int(cell & 0xffffff) }

// BuildColumns extracts the columnar view in two flat passes over the
// users (one to size the CSR arrays, one to fill them); nothing in the
// result points back into the Universe except the interned strings.
func (u *Universe) BuildColumns() *Columns {
	n := len(u.Users)
	c := &Columns{
		TotalMinutes:   make([]int64, n),
		TwoWeekMinutes: make([]int64, n),
		LibrarySize:    make([]int32, n),
		AccountAge:     make([]int64, n),
		FriendDegree:   make([]int32, n),
		GroupCount:     make([]int32, n),
		GenreOffsets:   make([]int64, n+1),
		Genres:         GenreNames[:],
	}
	for _, f := range u.Friendships {
		c.FriendDegree[f.A]++
		c.FriendDegree[f.B]++
	}

	// Pass 1: scalars plus the number of non-empty genre cells per user.
	var hist [genreCount]int32
	countCells := func(user *User) int {
		hist = [genreCount]int32{}
		for k := range user.Library {
			mask := u.Games[user.Library[k].GameIdx].Genres
			for b := 0; b < genreCount; b++ {
				if mask&(1<<b) != 0 {
					hist[b]++
				}
			}
		}
		cells := 0
		for _, h := range hist {
			if h > 0 {
				cells++
			}
		}
		return cells
	}
	countries := map[string]struct{}{}
	for i := range u.Users {
		user := &u.Users[i]
		c.TotalMinutes[i] = user.TotalMinutes
		c.TwoWeekMinutes[i] = user.TwoWeekMinutes
		c.LibrarySize[i] = int32(len(user.Library))
		c.AccountAge[i] = u.CollectedAt - user.Created
		c.GroupCount[i] = int32(len(user.Groups))
		c.GenreOffsets[i+1] = c.GenreOffsets[i] + int64(countCells(user))
		if user.Country != "" {
			countries[user.Country] = struct{}{}
		}
	}

	// Pass 2: fill the genre cells.
	c.GenreCells = make([]uint32, c.GenreOffsets[n])
	for i := range u.Users {
		countCells(&u.Users[i])
		off := c.GenreOffsets[i]
		for b := 0; b < genreCount; b++ {
			if hist[b] > 0 {
				c.GenreCells[off] = uint32(b)<<24 | uint32(hist[b])
				off++
			}
		}
	}

	c.Countries = make([]string, 0, len(countries))
	for code := range countries {
		c.Countries = append(c.Countries, code)
	}
	sort.Strings(c.Countries)
	return c
}

// FriendCSR returns the adjacency in compressed-sparse-row form: user
// i's incident edges are edges[offsets[i]:offsets[i+1]], each an index
// into u.Friendships, listed in edge-list encounter order — the same
// per-user order Adjacency produces. Storing edge indexes instead of
// (peer, since) pairs keeps the CSR at four bytes per directed edge;
// callers recover the peer as the friendship endpoint that is not i.
func (u *Universe) FriendCSR() (offsets []int64, edges []int32) {
	n := len(u.Users)
	offsets = make([]int64, n+1)
	for _, f := range u.Friendships {
		offsets[f.A+1]++
		offsets[f.B+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	edges = make([]int32, offsets[n])
	cur := make([]int64, n)
	copy(cur, offsets[:n])
	for e, f := range u.Friendships {
		edges[cur[f.A]] = int32(e)
		cur[f.A]++
		edges[cur[f.B]] = int32(e)
		cur[f.B]++
	}
	return offsets, edges
}
