package simworld

import "strconv"

// Formatting helpers for the generation hot paths. The generator names
// millions of entities ("ACH_220_017", "X042-city-31", "clan group 909");
// fmt.Sprintf allocates the boxed arguments and the result separately and
// dominated the allocation profile, so names are built into reused byte
// scratch and converted to a string once — or, for batches, into a single
// backing string sliced per name (a Go substring shares the backing
// array, so a thousand names cost one allocation).

// appendPadInt appends v in decimal, zero-padded to at least width digits
// — the semantics of fmt.Sprintf("%0*d", width, v) for non-negative v.
func appendPadInt(b []byte, v int64, width int) []byte {
	start := len(b)
	b = strconv.AppendInt(b, v, 10)
	if pad := width - (len(b) - start); pad > 0 {
		b = append(b, make([]byte, pad)...)
		copy(b[start+pad:], b[start:])
		for i := 0; i < pad; i++ {
			b[start+i] = '0'
		}
	}
	return b
}

// stringArena accumulates names in one growing buffer and hands out
// substrings of a single backing string, so a batch of n names costs one
// string allocation instead of n.
type stringArena struct {
	buf  []byte
	offs []int
}

func (a *stringArena) reset() {
	a.buf = a.buf[:0]
	a.offs = a.offs[:0]
}

// mark records the start of the next name; bytes are then appended to
// a.buf directly (or through the append helpers).
func (a *stringArena) mark() {
	a.offs = append(a.offs, len(a.buf))
}

// strings freezes the buffer and returns the names delimited by the
// recorded marks. The arena must not be appended to until reset.
func (a *stringArena) strings(out []string) []string {
	backing := string(a.buf)
	for k, off := range a.offs {
		end := len(backing)
		if k+1 < len(a.offs) {
			end = a.offs[k+1]
		}
		out = append(out, backing[off:end])
	}
	return out
}
