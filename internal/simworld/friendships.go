package simworld

import (
	"sort"

	"steamstudy/internal/par"
	"steamstudy/internal/randx"
)

// generateFriendships wires the friendship graph. The wiring must deliver,
// simultaneously:
//
//   - the Fig 2 degree distribution (the copula's friend-count marginal),
//     with the 250/300 cap dips;
//   - the §7/Fig 11 homophily: neighbors are similar in popularity, money
//     spent, playtime and games owned — achieved by pairing friendship
//     "stubs" sorted along the social latent with small Laplace-distributed
//     rank noise, a degree-preserving proximity matching;
//   - the §4.1 locality: ~70 % of friendships are domestic — achieved by
//     wiring a configurable share of each user's stubs within their latent
//     country (sorted by city, then social score, so city locality emerges
//     too);
//   - Fig 1's growth curves, via edge timestamps drawn from the users'
//     join dates plus an exponential befriending delay.
func generateFriendships(cfg Config, rng *randx.RNG, st *genState, u *Universe) {
	n := len(u.Users)
	wrng := rng.Split("friend-wiring")
	trng := rng.Split("friend-times")

	// Cap degrees by the §4.1 policies. The clamp concentrates the tail
	// mass at exactly the cap, producing the Fig 2 dips above 250.
	degrees := make([]int, n)
	for i := 0; i < n; i++ {
		d := st.friendTarget[i]
		if cap := u.Users[i].FriendCap(); d > cap {
			d = cap
		}
		degrees[i] = d
	}

	seen := make(map[uint64]struct{}, n*4)
	var edges []Friendship
	emit := func(a, b int32) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		key := uint64(a)<<32 | uint64(uint32(b))
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		edges = append(edges, Friendship{A: a, B: b})
		return true
	}

	// Split stubs into a domestic and a global share. Per-user independent
	// draws: chunked streams keep the split worker-independent.
	domestic := make([]int, n)
	global := make([]int, n)
	forChunks(cfg.Workers, n, wrng, "split", func(lo, hi int, chrng *randx.RNG) {
		for i := lo; i < hi; i++ {
			d := degrees[i]
			dd := int(float64(d)*cfg.DomesticWiringFrac + chrng.Float64())
			if dd > d {
				dd = d
			}
			domestic[i] = dd
			global[i] = d - dd
		}
	})

	// Pass 1: per-country wiring ordered by the social latent. City
	// locality needs no third pass: city assignment partially tracks the
	// social latent (users.go), so rank-local domestic pairs often share
	// a city.
	//
	// This is the parallel proposal pass of the coupled wiring stage: each
	// country's members are disjoint from every other country's, so the
	// countries run concurrently, each on its own split stream with a
	// country-local dedup set and edge list (a pass-1 edge has both
	// endpoints in one country, so cross-country duplicates cannot occur).
	// The per-country results are stitched into the global seen/edges in
	// sorted-country order, which keeps the edge list and every later pass
	// independent of the worker count.
	countryUsers := make(map[int16][]int32)
	for i := 0; i < n; i++ {
		if domestic[i] > 0 {
			c := st.country[i]
			countryUsers[c] = append(countryUsers[c], int32(i))
		}
	}
	countries := make([]int16, 0, len(countryUsers))
	for c := range countryUsers {
		countries = append(countries, c)
	}
	sort.Slice(countries, func(a, b int) bool { return countries[a] < countries[b] })
	paired := make([]int, n) // per-user edges actually created
	domRem := make([]int, n)
	copy(domRem, domestic)
	countryEdges := make([][]Friendship, len(countries))
	countryPass1 := make([]int, len(countries))
	par.For(cfg.Workers, len(countries), func(ci int) {
		crng := wrng.SplitN("domestic", uint64(ci))
		members := countryUsers[countries[ci]]
		sort.Slice(members, func(a, b int) bool {
			return st.social[members[a]] < st.social[members[b]]
		})
		localSeen := make(map[uint64]struct{}, len(members)*4)
		localEmit := func(a, b int32) bool {
			if a == b {
				return false
			}
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(uint32(b))
			if _, dup := localSeen[key]; dup {
				return false
			}
			localSeen[key] = struct{}{}
			countryEdges[ci] = append(countryEdges[ci], Friendship{A: a, B: b})
			return true
		}
		// Several rounds with widening windows: duplicate-edge drops are
		// retried domestically before any stub rolls over to the global
		// pass, keeping the §4.1 domestic share intact.
		for round := 0; round < 3; round++ {
			rem := 0
			for _, m := range members {
				rem += domRem[m]
			}
			if rem < 2 {
				break
			}
			wirePairs(crng, members, domRem, cfg.HomophilyNoise*float64(round*3+1), func(a, b int32) bool {
				if localEmit(a, b) {
					paired[a]++
					paired[b]++
					domRem[a]--
					domRem[b]--
					countryPass1[ci]++
					return true
				}
				return false
			})
		}
	})
	// Stitch the per-country proposals in sorted-country order.
	for ci := range countryEdges {
		for _, e := range countryEdges[ci] {
			seen[uint64(e.A)<<32|uint64(uint32(e.B))] = struct{}{}
		}
		edges = append(edges, countryEdges[ci]...)
		if debugWireStats != nil {
			debugWireStats.Pass1 += countryPass1[ci]
		}
	}

	// Pass 2: global wiring over the social order with whatever stubs
	// remain (the global share plus any domestic stubs the local pass
	// could not pair).
	remaining := make([]int, n)
	order := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		// Pass 1 pairs at most domestic[i] edges, so this is the global
		// share plus any domestic stubs the local pass could not place.
		if r := degrees[i] - paired[i]; r > 0 {
			remaining[i] = r
			order = append(order, int32(i))
		}
	}
	sort.Slice(order, func(a, b int) bool { return st.social[order[a]] < st.social[order[b]] })
	wirePairs(wrng, order, remaining, cfg.HomophilyNoise, func(a, b int32) bool {
		if emit(a, b) {
			paired[a]++
			paired[b]++
			if debugWireStats != nil {
				debugWireStats.Pass2++
			}
			return true
		}
		return false
	})

	// Repair pass: proximity matching drops stubs to self-pairs and
	// duplicate edges, which would crush the degree tail (a 122-friend
	// user loses far more stubs than a 2-friend user). Re-wire the
	// deficit with random pairing until the residual is negligible.
	repairEmit := func(a, b int32) bool {
		if emit(a, b) {
			paired[a]++
			paired[b]++
			if debugWireStats != nil {
				debugWireStats.Repair++
			}
			return true
		}
		return false
	}
	for round := 0; round < 6; round++ {
		deficitCount := make([]int, n)
		var deficitUsers []int32
		total := 0
		for i := 0; i < n; i++ {
			if d := degrees[i] - paired[i]; d > 0 {
				deficitCount[i] = d
				deficitUsers = append(deficitUsers, int32(i))
				total += d
			}
		}
		if total < 2 {
			break
		}
		before := len(edges)
		if round < 3 {
			// Domestic, homophilous repair: proximity-match the deficit
			// stubs ordered by (country, social latent), widening the
			// window each round.
			sort.Slice(deficitUsers, func(a, b int) bool {
				ua, ub := deficitUsers[a], deficitUsers[b]
				if st.country[ua] != st.country[ub] {
					return st.country[ua] < st.country[ub]
				}
				return st.social[ua] < st.social[ub]
			})
			wirePairs(wrng, deficitUsers, deficitCount, cfg.HomophilyNoise*float64(round+1), repairEmit)
		} else {
			// Random matching to drain whatever is left.
			var stubsLeft []int32
			for _, i := range deficitUsers {
				for d := 0; d < deficitCount[i]; d++ {
					stubsLeft = append(stubsLeft, i)
				}
			}
			wrng.Shuffle(len(stubsLeft), func(i, j int) {
				stubsLeft[i], stubsLeft[j] = stubsLeft[j], stubsLeft[i]
			})
			for i := 0; i+1 < len(stubsLeft); i += 2 {
				repairEmit(stubsLeft[i], stubsLeft[i+1])
			}
		}
		if len(edges) == before {
			break
		}
	}

	// Timestamps: befriending happens after both accounts exist, with an
	// exponential delay, clamped into the observation window. Per-edge
	// independent draws over the stitched (worker-independent) edge order.
	forChunks(cfg.Workers, len(edges), trng, "chunk", func(lo, hi int, chrng *randx.RNG) {
		for i := lo; i < hi; i++ {
			e := &edges[i]
			start := u.Users[e.A].Created
			if c := u.Users[e.B].Created; c > start {
				start = c
			}
			delay := int64(chrng.ExpFloat64() * cfg.FriendDelayMeanDays * 24 * 3600)
			ts := start + delay
			if ts > u.CollectedAt {
				// Befriending would postdate the crawl: place it uniformly
				// within the feasible window instead.
				window := u.CollectedAt - start
				if window <= 0 {
					window = 1
				}
				ts = start + chrng.Int63()%window
			}
			e.Since = ts
		}
	})
	sort.Slice(edges, func(a, b int) bool { return edges[a].Since < edges[b].Since })
	u.Friendships = edges
}

// wirePairs performs degree-preserving proximity matching: each user in
// ordered contributes stubs[user] stubs laid out in order; every stub gets
// a key equal to its position plus Laplace noise of scale
// noiseFrac*len(stubs); stubs are re-sorted by key and adjacent stubs of
// distinct users are paired. Smaller noise keeps partners closer in the
// given order (stronger homophily). Self-pairs are skipped (one stub is
// dropped); duplicate pairs are the caller's concern.
func wirePairs(rng *randx.RNG, ordered []int32, stubs []int, noiseFrac float64, emit func(a, b int32) bool) {
	total := 0
	for _, uidx := range ordered {
		total += stubs[uidx]
	}
	if total < 2 {
		return
	}
	type stub struct {
		user int32
		key  float64
	}
	all := make([]stub, 0, total)
	pos := 0
	scale := noiseFrac * float64(total)
	if scale < 12 {
		// Floor the window: with near-zero noise, pairing degenerates to
		// adjacent stubs and interleaved users pair with each other
		// repeatedly — every repeat is a duplicate edge that gets dropped.
		scale = 12
	}
	for _, uidx := range ordered {
		// High-degree users need a wider partner window than the base
		// noise: their own stubs occupy a contiguous block, and pairing
		// within a narrow window would produce mostly duplicate edges
		// (which are dropped, crushing the degree tail).
		s := scale
		if widened := 4 * float64(stubs[uidx]); widened > s {
			s = widened
		}
		for k := 0; k < stubs[uidx]; k++ {
			all = append(all, stub{user: uidx, key: float64(pos) + rng.Laplace(s)})
			pos++
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].key < all[b].key })
	// Queue drain: consecutive stubs of the same user accumulate and are
	// paired one-by-one with the following distinct-user stubs, so a
	// high-degree user whose stubs cluster in key space still receives
	// its full degree from its nearest neighbours in the ordering.
	var qUser int32
	qCount := 0
	for _, s := range all {
		if qCount == 0 {
			qUser, qCount = s.user, 1
			continue
		}
		if s.user == qUser {
			qCount++
			continue
		}
		ok := emit(qUser, s.user)
		qCount--
		if !ok && qCount == 0 {
			// The queued stub was wasted on a duplicate edge; reuse the
			// current stub so it still gets a chance to pair.
			qUser, qCount = s.user, 1
		}
	}
}
