package simworld

import (
	"reflect"
	"testing"
)

// TestGenerateWorkerIndependent is the determinism contract for the
// parallel data plane: the generated universe must be identical — field
// for field, including every RNG-derived value — for any worker count.
// Workers only changes which goroutine computes each fixed chunk.
func TestGenerateWorkerIndependent(t *testing.T) {
	cfg := smallConfig(3000)
	base := MustGenerate(cfg, 99)
	for _, w := range []int{1, 2, 3, 0} {
		wcfg := cfg
		wcfg.Workers = w
		got := MustGenerate(wcfg, 99)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("universe differs at Workers=%d", w)
		}
	}
}

// TestGenerateStoresZeroWorkers pins the normalization that makes the
// comparison above possible without test-side fixups: the stored Config
// records Workers as 0 regardless of what Generate ran with.
func TestGenerateStoresZeroWorkers(t *testing.T) {
	cfg := smallConfig(500)
	cfg.Workers = 7
	u := MustGenerate(cfg, 3)
	if u.Config.Workers != 0 {
		t.Fatalf("stored Config.Workers = %d, want 0", u.Config.Workers)
	}
}
