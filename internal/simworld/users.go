package simworld

import (
	"fmt"
	"math"
	"sort"

	"steamstudy/internal/dists"
	"steamstudy/internal/randx"
	"steamstudy/internal/steamid"
)

// genState carries the intermediate per-user draws between generation
// stages.
type genState struct {
	cfg Config
	cat *catalogState

	// Latent copula outputs.
	social []float64 // wiring latent (z-score)
	priceU []float64 // price-preference uniform

	// Attribute targets decoded through the marginals.
	friendTarget []int
	gamesTarget  []int
	groupsTarget []int
	totalTarget  []int64 // minutes
	twoWkTarget  []int64 // minutes

	// Location (assigned for every user; only a fraction reports it).
	country []int16 // index into countryCodes
	city    []int16

	countryCodes []string

	// Ownership-derived lookups for the group generator.
	popRank []int32   // popularity rank per game (0 = most popular)
	owners  [][]int32 // owner lists for the top-ranked games
}

// generateUsers draws every user's latent attribute vector through the
// Gaussian copula, assigns IDs along the sparse ID space, creation dates
// following the network's exponential growth, persona flags, and location.
func generateUsers(cfg Config, rng *randx.RNG, cat *catalogState, u *Universe) (*genState, error) {
	n := cfg.Users
	st := &genState{
		cfg: cfg, cat: cat,
		social:       make([]float64, n),
		priceU:       make([]float64, n),
		friendTarget: make([]int, n),
		gamesTarget:  make([]int, n),
		groupsTarget: make([]int, n),
		totalTarget:  make([]int64, n),
		twoWkTarget:  make([]int64, n),
		country:      make([]int16, n),
		city:         make([]int16, n),
	}

	// Compile marginals.
	friendsQ, err := cfg.Friends.build()
	if err != nil {
		return nil, err
	}
	gamesQ, err := cfg.GamesOwned.build()
	if err != nil {
		return nil, err
	}
	groupsQ, err := cfg.Groups.build()
	if err != nil {
		return nil, err
	}
	totalQ, err := cfg.TotalPlay.build()
	if err != nil {
		return nil, err
	}
	twoWkQ, err := cfg.TwoWeekPlay.build()
	if err != nil {
		return nil, err
	}

	// Copula over the latent dimensions.
	flat := make([]float64, copulaDim*copulaDim)
	for i := 0; i < copulaDim; i++ {
		for j := 0; j < copulaDim; j++ {
			flat[i*copulaDim+j] = cfg.Spearman[i][j]
		}
	}
	cop, ridge, err := randx.NewCopula(copulaDim, flat)
	if err != nil {
		return nil, fmt.Errorf("simworld: building copula: %w", err)
	}
	if ridge > 0.05 {
		return nil, fmt.Errorf("simworld: correlation matrix needed ridge %v; targets are inconsistent", ridge)
	}

	u.Users = make([]User, n)
	crng := rng.Split("copula")
	prng := rng.Split("persona")
	uFriends := make([]float64, n)
	uGames := make([]float64, n)
	uGroups := make([]float64, n)
	uTotal := make([]float64, n)
	uTwoWk := make([]float64, n)
	// Copula draws are per-user independent: chunk the population, one
	// split stream and one scratch pair per chunk, every write addressed
	// by the user index.
	forChunks(cfg.Workers, n, crng, "chunk", func(lo, hi int, chrng *randx.RNG) {
		z := make([]float64, copulaDim)
		uu := make([]float64, copulaDim)
		for i := lo; i < hi; i++ {
			cop.Sample(chrng, z, uu)
			st.priceU[i] = uu[dimPrice]
			uFriends[i] = uu[dimFriends]
			uGames[i] = uu[dimGames]
			uGroups[i] = uu[dimGroups]
			uTotal[i] = uu[dimTotal]
			uTwoWk[i] = uu[dimTwoWeek]
		}
	})

	// The social (friendship-wiring) latent is a weighted combination of
	// the attribute z-scores rather than a copula dimension: the value
	// proxy folds library size and price preference together the same way
	// account market value does, so value homophily comes out strongest
	// (Fig 11) without violating positive definiteness of the copula.
	w := cfg.SocialWeights
	srng := crng.Split("social-noise")
	forChunks(cfg.Workers, n, srng, "chunk", func(lo, hi int, chrng *randx.RNG) {
		for i := lo; i < hi; i++ {
			zValue := 0.55*dists.NormalQuantile(uGames[i]) + 0.85*dists.NormalQuantile(st.priceU[i])
			st.social[i] = w.Value*zValue/1.0 +
				w.Friends*dists.NormalQuantile(uFriends[i]) +
				w.Total*dists.NormalQuantile(uTotal[i]) +
				w.TwoWeek*dists.NormalQuantile(uTwoWk[i]) +
				w.Groups*dists.NormalQuantile(uGroups[i]) +
				w.Noise*chrng.NormFloat64()
		}
	})

	// Rank-exact marginal assignment. The copula uniforms provide the
	// ranks; the values come from the marginal quantile functions applied
	// to rank positions within the eligible set. This keeps the marginals
	// exact under conditioning: a naive Quantile(u) on the gated subsets
	// would skew, because the copula correlates the uniforms (e.g. owners
	// have systematically high playtime uniforms).
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	rankAssign(all, uFriends, cfg.Friends.ZeroFrac, friendsQ.Tail, func(i int32, v float64) {
		st.friendTarget[i] = int(v + 0.5)
	})
	rankAssign(all, uGames, cfg.GamesOwned.ZeroFrac, gamesQ.Tail, func(i int32, v float64) {
		st.gamesTarget[i] = int(v + 0.5)
	})
	rankAssign(all, uGroups, cfg.Groups.ZeroFrac, groupsQ.Tail, func(i int32, v float64) {
		st.groupsTarget[i] = int(v + 0.5)
	})
	// Playtime is gated on ownership: players are a subset of owners.
	var owners []int32
	for i := 0; i < n; i++ {
		if st.gamesTarget[i] > 0 {
			owners = append(owners, int32(i))
		}
	}
	rankAssign(owners, uTotal, cfg.TotalPlay.ZeroFrac, totalQ.Tail, func(i int32, v float64) {
		st.totalTarget[i] = int64(v + 0.5)
	})
	var players []int32
	for _, i := range owners {
		if st.totalTarget[i] > 0 {
			players = append(players, i)
		}
	}
	rankAssign(players, uTwoWk, cfg.TwoWeekPlay.ZeroFrac, twoWkQ.Tail, func(i int32, v float64) {
		st.twoWkTarget[i] = int64(v + 0.5)
	})

	forChunks(cfg.Workers, n, prng, "chunk", func(lo, hi int, chrng *randx.RNG) {
		for i := lo; i < hi; i++ {
			user := &u.Users[i]
			// Persona flags.
			if chrng.Bool(cfg.FacebookLinkedFrac) {
				user.Persona |= PersonaFacebookLinked
			}
			user.BadgeLevel = uint8(clampInt(chrng.Geometric(cfg.BadgeLevelP), 0, 200))
			if chrng.Bool(cfg.CollectorFrac) {
				user.Persona |= PersonaCollector
				st.gamesTarget[i] = collectorLibrarySize(cfg, chrng)
			}
			if chrng.Bool(cfg.IdlerFrac) {
				user.Persona |= PersonaIdler
				// §6.1: idlers sit at 80-90 % of the 336-hour maximum.
				maxMin := 14.0 * 24 * 60
				st.twoWkTarget[i] = int64(maxMin * (0.8 + 0.1*chrng.Float64()))
				if st.gamesTarget[i] == 0 {
					st.gamesTarget[i] = 1 // something must be left running
				}
			}
			if chrng.Bool(cfg.AchievementHunterFrac) {
				user.Persona |= PersonaAchievementHunter
			}
			if chrng.Bool(cfg.ValveEmployeeFrac) {
				user.Persona |= PersonaValveEmployee
			}
			// Consistency: two-week playtime cannot exceed lifetime playtime.
			// Cap the two-week value (rather than raising the total), which
			// leaves the carefully calibrated total-playtime marginal intact;
			// the high latent total↔two-week correlation keeps violations
			// rare. Idlers are the exception: their extreme fortnight really
			// does push their lifetime total up.
			if st.twoWkTarget[i] > st.totalTarget[i] {
				if user.Persona.Has(PersonaIdler) {
					st.totalTarget[i] = st.twoWkTarget[i]
				} else {
					st.twoWkTarget[i] = st.totalTarget[i]
				}
			}
		}
	})

	assignIDsAndCreation(cfg, rng, u)
	assignLocation(cfg, rng, st, u)
	return st, nil
}

// rankAssign distributes an attribute over the eligible users with an
// exact marginal: the bottom zeroFrac of the eligible set (by copula
// uniform) stays at zero, and the remainder receives tail.Quantile at its
// exact rank position. Values are left untouched for zero-assigned users
// (callers start from zeroed slices).
func rankAssign(elig []int32, u []float64, zeroFrac float64, tail *dists.QuantileSpline, set func(i int32, v float64)) {
	m := len(elig)
	if m == 0 {
		return
	}
	order := make([]int32, m)
	copy(order, elig)
	sort.Slice(order, func(a, b int) bool { return u[order[a]] < u[order[b]] })
	zeros := int(zeroFrac*float64(m) + 0.5)
	nz := m - zeros
	for j, idx := range order[zeros:] {
		p := (float64(j) + 0.5) / float64(nz)
		set(idx, tail.Quantile(p))
	}
}

// collectorLibrarySize draws a collector's library size: a lognormal bulk
// with the §5 uptick band (1268-1290 games) carved out explicitly.
func collectorLibrarySize(cfg Config, rng *randx.RNG) int {
	if rng.Bool(cfg.CollectorUptickShare) {
		return cfg.CollectorUptickLo + rng.Intn(cfg.CollectorUptickHi-cfg.CollectorUptickLo+1)
	}
	v := int(rng.Lognormal(math.Log(cfg.CollectorMedianGames), 0.65))
	max := cfg.CatalogSize * 9 / 10 // the top collector owned 90.3 % of the catalog
	return clampInt(v, 200, max)
}

// assignIDsAndCreation walks the sequential ID space with the §3.1 density
// profile (sparse early range, dense later) and assigns creation times
// following exponential network growth, preserving the invariant that IDs
// are assigned in creation order.
func assignIDsAndCreation(cfg Config, rng *randx.RNG, u *Universe) {
	n := len(u.Users)
	idrng := rng.Split("ids")

	// Creation times: exponential growth between launch and first crawl.
	// The draws are exchangeable (they are sorted immediately after), but
	// chunked streams still make the sorted sequence worker-independent.
	span := float64(FirstSnapshotEnd - SteamLaunch)
	rate := cfg.UserGrowthRate * span / (365.25 * 24 * 3600) // growth over the full span
	times := make([]int64, n)
	forChunks(cfg.Workers, n, idrng, "times", func(lo, hi int, chrng *randx.RNG) {
		for i := lo; i < hi; i++ {
			// Inverse CDF of a truncated exponential growth density
			// f(t) ∝ e^{rate·t/span}.
			v := chrng.Float64()
			t := math.Log(1+v*(math.Exp(rate)-1)) / rate
			times[i] = SteamLaunch + int64(t*span)
		}
	})
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })

	// The account-gap walk is inherently sequential (each ID depends on
	// every gap before it) and cheap; it stays on a single stream.
	grng := idrng.Split("gaps")
	density := steamid.DefaultDensity
	width := density.RangeForAccounts(float64(n))
	acct := uint64(0)
	for i := 0; i < n; i++ {
		u.Users[i].ID = steamid.FromAccountID(uint32(acct))
		u.Users[i].Created = times[i]
		// Advance by a geometric gap matching the local density.
		pos := float64(acct) / float64(width)
		d := density.DensityAt(pos)
		acct++
		for !grng.Bool(d) {
			acct++
		}
	}
}

// assignLocation gives every user a latent country and city. Country
// labels are laid out in contiguous runs over a country-specific shuffle
// so the domestic wiring pass (friendships.go) can target compatriots.
func assignLocation(cfg Config, rng *randx.RNG, st *genState, u *Universe) {
	lrng := rng.Split("location")
	// Build the country code list: Table 1 top-10 plus the synthetic
	// long tail sharing OtherFrac.
	var codes []string
	var weights []float64
	for _, cs := range cfg.Countries {
		codes = append(codes, cs.Code)
		weights = append(weights, cs.Frac)
	}
	// The long tail of countries is Zipf-weighted: most "other" users live
	// in mid-sized countries with viable domestic friend pools, which is
	// essential for the §4.1 domestic-friendship share (uniform tiny
	// countries would force their gamers abroad).
	var otherNorm float64
	for i := 0; i < cfg.OtherCountries; i++ {
		otherNorm += 1 / float64(i+1)
	}
	for i := 0; i < cfg.OtherCountries; i++ {
		codes = append(codes, fmt.Sprintf("X%03d", i))
		weights = append(weights, cfg.OtherFrac/float64(i+1)/otherNorm)
	}
	st.countryCodes = codes
	picker := randx.NewAlias(weights)
	cityZipf := randx.NewZipf(cfg.CitiesPerCountry, 1.0)

	// City Zipf intervals over [0, 1) for the social-bucket assignment.
	cityEdges := make([]float64, cfg.CitiesPerCountry)
	{
		h := 0.0
		for k := 0; k < cfg.CitiesPerCountry; k++ {
			h += 1 / float64(k+1)
		}
		acc := 0.0
		for k := 0; k < cfg.CitiesPerCountry; k++ {
			acc += 1 / float64(k+1) / h
			cityEdges[k] = acc
		}
	}
	cityForSocial := func(z float64) int16 {
		p := randx.NormalCDF(z)
		for k, edge := range cityEdges {
			if p <= edge {
				return int16(k)
			}
		}
		return int16(len(cityEdges) - 1)
	}

	// Intern the full city-name table up front — one backing string for
	// all country×city combinations — so the per-user loop assigns a
	// shared substring instead of formatting a fresh name per reporter.
	var cityArena stringArena
	for _, code := range codes {
		for k := 0; k < cfg.CitiesPerCountry; k++ {
			cityArena.mark()
			cityArena.buf = append(append(cityArena.buf, code...), "-city-"...)
			cityArena.buf = appendPadInt(cityArena.buf, int64(k), 2)
		}
	}
	cityNames := cityArena.strings(nil)
	cityName := func(c, city int16) string {
		return cityNames[int(c)*cfg.CitiesPerCountry+int(city)]
	}

	forChunks(cfg.Workers, len(u.Users), lrng, "chunk", func(lo, hi int, chrng *randx.RNG) {
		for i := lo; i < hi; i++ {
			c := int16(picker.Sample(chrng))
			st.country[i] = c
			// Cities partially track the social latent, so rank-local
			// (domestic) friendships land in the same city at roughly the
			// §4.1 rate without a third wiring pass.
			if chrng.Bool(0.65) {
				st.city[i] = cityForSocial(st.social[i])
			} else {
				st.city[i] = int16(cityZipf.Sample(chrng))
			}
			if chrng.Bool(cfg.CountryReportFrac) {
				u.Users[i].Country = codes[c]
				if chrng.Bool(cfg.CityReportFrac / cfg.CountryReportFrac) {
					u.Users[i].City = cityName(c, st.city[i])
				}
			}
		}
	})
}
