package simworld

import (
	"steamstudy/internal/par"
	"steamstudy/internal/randx"
)

// genChunk is the fixed chunk width for parallel generation stages. It is
// a constant, never derived from the worker count: chunk c of a stage
// always covers the same index range and always draws from the same split
// stream rng.SplitN(label, c), so the generated universe is a pure
// function of (Config, seed) and the Workers knob only changes which
// goroutine happens to compute each chunk. The width trades scheduling
// granularity against per-chunk stream-derivation overhead; 4096 keeps
// both negligible for populations from 10^3 to 10^8.
const genChunk = 4096

// forChunks partitions [0, n) into fixed genChunk-wide chunks and runs
// body(lo, hi, crng) for each on the pool, where crng is the chunk's own
// split stream derived as parent.SplitN(label, chunkIndex). The parent
// RNG is only read, never advanced, so concurrent chunk derivation is
// safe and the stream layout is independent of scheduling.
//
// body must follow the par determinism contract: write only to index-
// addressed state inside [lo, hi) (or chunk-local state stitched by the
// caller in chunk order) and draw randomness only from crng.
func forChunks(workers, n int, parent *randx.RNG, label string, body func(lo, hi int, crng *randx.RNG)) {
	nc := (n + genChunk - 1) / genChunk
	par.For(workers, nc, func(c int) {
		lo := c * genChunk
		hi := lo + genChunk
		if hi > n {
			hi = n
		}
		body(lo, hi, parent.SplitN(label, uint64(c)))
	})
}
