package simworld

import (
	"math"
	"sort"
	"strconv"

	"steamstudy/internal/dists"
	"steamstudy/internal/par"
	"steamstudy/internal/randx"
)

// catalogState carries catalog-derived lookup structures used by later
// generation stages.
type catalogState struct {
	games []Game
	// popularity holds the raw ownership weight of every game.
	popularity []float64
	// tiltedPickers sample games with the per-user price tilt applied;
	// tier i corresponds to tilt tiltLevels[i].
	tiltedPickers []*randx.Alias
	tiltLevels    []float64
	// multiplayerIdx marks multiplayer games for the playtime split.
	multiplayer []bool
}

// tiltTiers quantizes the per-user price preference into a small number of
// precomputed alias tables (sampling with a continuous tilt would require
// one table per user).
const tiltTiers = 5

// generateCatalog builds the product catalog: genre labels with the Fig 5
// mix, lognormal prices, the §6.2 multiplayer share, quality-driven
// popularity, and §9 achievement lists.
func generateCatalog(cfg Config, rng *randx.RNG) *catalogState {
	n := cfg.CatalogSize
	st := &catalogState{
		games:       make([]Game, n),
		popularity:  make([]float64, n),
		multiplayer: make([]bool, n),
	}
	// Per-game draws are independent: chunk the catalog, one split stream
	// per chunk, each chunk writing only its own games.
	forChunks(cfg.Workers, n, rng, "game", func(lo, hi int, crng *randx.RNG) {
		var nbuf []byte
		for i := lo; i < hi; i++ {
			g := &st.games[i]
			g.AppID = uint32(10 + i*10) // Steam AppIDs are sparse multiples of 10
			nbuf = appendPadInt(append(nbuf[:0], "Game "...), int64(i), 5)
			g.Name = string(nbuf)
			g.Type = productTypeFor(crng)
			g.ReleaseYear = 2003 + crng.Intn(11)
			// paper: 1,201 publishers
			nbuf = appendPadInt(append(nbuf[:0], "Studio "...), int64(crng.Intn(1201)), 3)
			g.Developer = string(nbuf)
			g.Quality = crng.NormFloat64()

			// Genre labels, multiplayer flags and prices are dealt
			// stratified once the quality/popularity orders are known (see
			// dealGenres/dealStratified below).

			if crng.Bool(0.45) {
				g.Metacritic = clampInt(int(72+10*g.Quality+6*crng.NormFloat64()), 20, 98)
			}
		}
	})

	// Quality order drives both the genre deal and the popularity Zipf.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return st.games[order[a]].Quality > st.games[order[b]].Quality
	})

	dealGenres(cfg, rng.Split("genres"), st, order)

	// Popularity: Zipf over quality rank, boosted per genre, so the most
	// owned genres match Fig 5 (Action far ahead, then Strategy, Indie).
	for rank, idx := range order {
		w := math.Pow(float64(rank+1), -cfg.PopularityZipf)
		boost := 1.0
		for _, spec := range cfg.Genres {
			if st.games[idx].Genres.Has(spec.Genre) {
				boost *= spec.PopularityBoost
			}
		}
		st.popularity[idx] = w * boost
	}

	dealStratified(cfg, rng.Split("deal"), st)

	generateAchievements(cfg, rng, st)

	// Precompute tilted alias pickers: weight^tilt applied to price. The
	// tiers are independent (no randomness, disjoint slots), so build
	// them on the pool.
	st.tiltLevels = make([]float64, tiltTiers)
	st.tiltedPickers = make([]*randx.Alias, tiltTiers)
	par.For(cfg.Workers, tiltTiers, func(t int) {
		// Tilts spread across ±2.5: a wide spread of per-user average
		// price is what decouples account market value from raw library
		// size (the paper's value homophily ρ=.77 far exceeds its
		// games-owned homophily ρ=.45, which requires this decoupling).
		tilt := (float64(t)/(tiltTiers-1)*2 - 1) * 2.0
		st.tiltLevels[t] = tilt
		weights := make([]float64, n)
		for i := range weights {
			price := float64(st.games[i].PriceCents)/100 + 2 // +2 keeps free games samplable
			weights[i] = st.popularity[i] * math.Exp(tilt*math.Log(price))
		}
		st.tiltedPickers[t] = randx.NewAlias(weights)
	})
	return st
}

// dealGenres assigns genre labels stratified over the quality order:
// every 16-game quality block holds each genre's exact catalog share
// (random WITHIN the block). Quality rank is what the popularity Zipf
// runs over, so independent per-game Bernoulli labels would let the
// genre mix of the handful of top titles — which dominate the Fig 5/
// Fig 9 genre playtime shares — drift by tens of percent between seeds.
func dealGenres(cfg Config, rng *randx.RNG, st *catalogState, qorder []int) {
	n := len(st.games)
	const block = 16
	for _, spec := range cfg.Genres {
		grng := rng.SplitN("genre", uint64(spec.Genre))
		assigned := 0
		for lo := 0; lo < n; lo += block {
			hi := lo + block
			if hi > n {
				hi = n
			}
			want := int(spec.CatalogFrac*float64(hi)+0.5) - assigned
			if want > hi-lo {
				want = hi - lo
			}
			if want < 0 {
				want = 0
			}
			slots := grng.Perm(hi - lo)
			for k := 0; k < want; k++ {
				st.games[qorder[lo+slots[k]]].Genres |= spec.Genre
			}
			assigned += want
		}
	}
	// Ensure at least one label.
	frng := rng.Split("fallback")
	for i := range st.games {
		if st.games[i].Genres == 0 {
			st.games[i].Genres |= cfg.Genres[frng.Intn(len(cfg.Genres))].Genre
		}
	}
}

// dealStratified assigns the per-game attributes that the universe-level
// calibration statistics are common-mode sensitive to — the §6.2
// multiplayer flags and the storefront prices — stratified over the
// popularity order. Independent per-game draws would leave those
// statistics at the mercy of a handful of draws: focal-group alignment,
// main-game selection and popularity-weighted library sampling funnel
// playtime and spending onto the top-popularity titles, so whether ranks
// 1-5 happen to be multiplayer (or cost $79 instead of $5) swings the
// multiplayer playtime share and the account-value percentiles by tens
// of percent between seeds. Stratification keeps the marginals exact
// while pinning every popularity stratum to a representative mix.
func dealStratified(cfg Config, rng *randx.RNG, st *catalogState) {
	n := len(st.games)
	porder := make([]int, n)
	for i := range porder {
		porder[i] = i
	}
	sortByDesc(porder, st.popularity)
	const block = 16

	// Multiplayer: every block holds its exact share of multiplayer
	// titles, with a largest-remainder running target so the cumulative
	// count is round(frac·hi) at every block boundary. WITHIN a block the
	// slots go preferentially to the genres that actually ship
	// multiplayer on Steam — Action, MMO and free-to-play — via weighted
	// sampling without replacement. The §6.2 playtime funnel
	// (MultiplayerTotalBoost, game-server clans) follows the multiplayer
	// flags, so this coupling is what routes the funnel onto Action
	// titles the way Fig 9's genre playtime shares demand.
	mpAffinity := func(g *Game) float64 {
		w := 1.0
		if g.Genres.Has(GenreAction) {
			w *= 3
		}
		if g.Genres.Has(GenreMMO) {
			w *= 8
		}
		if g.Genres.Has(GenreFreeToPlay) {
			w *= 2
		}
		return w
	}
	mrng := rng.Split("multiplayer")
	assigned := 0
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		want := int(cfg.MultiplayerFrac*float64(hi)+0.5) - assigned
		if want > hi-lo {
			want = hi - lo
		}
		if want < 0 {
			want = 0
		}
		// Efraimidis–Spirakis: the `want` smallest Exp(1)/w keys win.
		type slotKey struct {
			gi  int
			key float64
		}
		keys := make([]slotKey, hi-lo)
		for k := range keys {
			gi := porder[lo+k]
			keys[k] = slotKey{gi: gi, key: mrng.ExpFloat64() / mpAffinity(&st.games[gi])}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
		for k := 0; k < want; k++ {
			st.games[keys[k].gi].Multiplayer = true
			st.multiplayer[keys[k].gi] = true
		}
		assigned += want
	}

	// Prices: Latin-hypercube over the price distribution — each block
	// receives one jittered uniform per stratum of the price quantile
	// scale, shuffled within the block, so every popularity stratum sees
	// the full cheap-to-expensive spread while the lognormal marginal,
	// the free-to-play share and the x.99 convention stay exact.
	// Genre-flagged free-to-play titles stay free regardless of the slot
	// they are dealt.
	prng := rng.Split("price")
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		bl := hi - lo
		slots := prng.Perm(bl)
		for k := 0; k < bl; k++ {
			g := &st.games[porder[lo+slots[k]]]
			u := (float64(k) + prng.Float64()) / float64(bl)
			if g.Genres.Has(GenreFreeToPlay) || u < cfg.FreeFrac {
				g.PriceCents = 0
				g.Genres |= GenreFreeToPlay
				continue
			}
			// Remap the remaining quantile range onto the lognormal.
			v := (u - cfg.FreeFrac) / (1 - cfg.FreeFrac)
			dollars := math.Exp(cfg.PriceMeanLog + cfg.PriceSigmaLog*dists.NormalQuantile(v))
			if dollars > cfg.PriceMax {
				dollars = cfg.PriceMax
			}
			whole := math.Floor(dollars)
			if whole < 1 {
				whole = 1
			}
			g.PriceCents = int64(whole)*100 - 1 // x.99 pricing
		}
	}
}

func productTypeFor(rng *randx.RNG) ProductType {
	// The paper's 6,156 "products" include non-game entries; keep a small
	// share of DLC/demo/video items (they carry genres and prices too).
	u := rng.Float64()
	switch {
	case u < 0.86:
		return ProductGame
	case u < 0.94:
		return ProductDLC
	case u < 0.98:
		return ProductDemo
	default:
		return ProductVideo
	}
}

// generateAchievements fills each game's achievement list per §9: ~22 % of
// games offer none; counts are lognormal (mode 12, median 24, mean 33)
// with a popularity loading inside the 1-90 band — bigger games invest in
// more achievements — which produces the paper's moderate correlation
// between achievements offered and cumulative playtime; a small "spam"
// population offers 90+ (up to 1,629) achievements on unpopular titles.
func generateAchievements(cfg Config, rng *randx.RNG, st *catalogState) {
	// Standardize log-popularity: the loading operates on a z-score so
	// the count marginal stays centered regardless of catalog size.
	var mean, sd float64
	logw := make([]float64, len(st.games))
	for i, w := range st.popularity {
		logw[i] = math.Log(w)
		mean += logw[i]
	}
	mean /= float64(len(logw))
	for _, lw := range logw {
		d := lw - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(logw)))
	if sd == 0 {
		sd = 1
	}
	// Pass 1 (chunked): decide each game's achievement count. Spam titles
	// get a placeholder count here; the actual spam counts are re-dealt
	// against popularity below.
	counts := make([]int, len(st.games))
	forChunks(cfg.Workers, len(st.games), rng, "ach", func(lo, hi int, crng *randx.RNG) {
		for i := lo; i < hi; i++ {
			g := &st.games[i]
			if g.Type != ProductGame {
				continue
			}
			zPop := (logw[i] - mean) / sd
			var count int
			switch {
			case crng.Bool(cfg.AchievementsNoneFrac):
				count = 0
			case crng.Bool(cfg.AchievementSpamFrac):
				// Achievement-spam titles: many achievements, low quality.
				count = 91 + int(crng.BoundedPareto(1.6, 1, float64(cfg.AchievementsMax-90)))
				if count > cfg.AchievementsMax {
					count = cfg.AchievementsMax
				}
				g.Quality -= 1.2 // these are low-effort titles
			default:
				scale := 1.0
				for _, spec := range cfg.Genres {
					if g.Genres.Has(spec.Genre) {
						scale *= spec.AchievementScale
					}
				}
				mu := cfg.AchievementsMedLog + cfg.AchievementsQualityB*zPop + math.Log(scale)
				count = int(math.Exp(mu + cfg.AchievementsSigmaLog*crng.NormFloat64()))
				// Ordinary games stay in the 1-90 band (only spam titles go
				// beyond). Redraw rather than clamp: clamping would pile an
				// artificial mode at 90.
				for tries := 0; count > 90 && tries < 6; tries++ {
					count = int(math.Exp(mu + cfg.AchievementsSigmaLog*crng.NormFloat64()))
				}
				if count > 90 {
					count = 12 + crng.Intn(60)
				}
				if count < 1 {
					count = 1
				}
			}
			counts[i] = count
		}
	})

	dealSpamCounts(rng.Split("spam-deal"), st, counts)

	// Pass 2 (chunked): build the achievement lists from the final counts.
	forChunks(cfg.Workers, len(st.games), rng, "ach-lists", func(lo, hi int, crng *randx.RNG) {
		var sc achScratch
		for i := lo; i < hi; i++ {
			if counts[i] > 0 {
				st.games[i].Achievements = makeAchievementList(cfg, crng, &st.games[i], counts[i], &sc)
			}
		}
	})
}

// dealSpamCounts re-deals the spam titles' achievement counts (>90)
// against their popularity ranks through a permutation chosen for
// near-zero rank correlation. The paper's §9 finding is that playtime
// and achievements offered are uncorrelated beyond 90 achievements;
// with only ~1 % of the catalog in the spam band, an independent random
// pairing has a rank-correlation standard error of ~0.3 and would
// reproduce that fact only by seed luck.
func dealSpamCounts(rng *randx.RNG, st *catalogState, counts []int) {
	var spam []int
	for i, c := range counts {
		if c > 90 {
			spam = append(spam, i)
		}
	}
	m := len(spam)
	if m < 3 {
		return
	}
	// Popularity-sorted spam titles and their sorted counts.
	sortByDesc(spam, st.popularity)
	vals := make([]int, m)
	for k, gi := range spam {
		vals[k] = counts[gi]
	}
	sort.Ints(vals)
	// Pick the flattest of a fixed number of candidate permutations; with
	// |rho| falling as ~1/sqrt(tries), 64 candidates push the dealt
	// correlation well below the residual playtime noise.
	best := rng.Perm(m)
	bestRho := math.Abs(permRho(best))
	for t := 0; t < 63 && bestRho > 0.02; t++ {
		p := rng.Perm(m)
		if r := math.Abs(permRho(p)); r < bestRho {
			best, bestRho = p, r
		}
	}
	for k, gi := range spam {
		counts[gi] = vals[best[k]]
	}
}

// permRho is the Spearman correlation of the pairing (k, p[k]).
func permRho(p []int) float64 {
	n := float64(len(p))
	var d2 float64
	for k, v := range p {
		d := float64(k - v)
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

// achScratch is per-chunk reusable state for makeAchievementList: the
// raw-percentage scratch and the name arena survive across the chunk's
// games, so a game's list costs two allocations (the list itself and one
// backing string shared by all its names) instead of two per achievement.
type achScratch struct {
	raw   []float64
	arena stringArena
	names []string
}

// makeAchievementList builds count achievements whose global completion
// percentages decay from easy story beats to rare completionist goals,
// scaled so the game's average matches its genre target (§9).
func makeAchievementList(cfg Config, rng *randx.RNG, g *Game, count int, sc *achScratch) []Achievement {
	target := completionTarget(cfg, rng, g)
	achs := make([]Achievement, count)
	// Raw decaying curve: the k-th achievement is completed by a fraction
	// that decays geometrically with noise.
	if cap(sc.raw) < count {
		sc.raw = make([]float64, count)
	}
	raw := sc.raw[:count]
	sum := 0.0
	for k := range raw {
		base := math.Exp(-2.8 * float64(k) / float64(count))
		raw[k] = base * math.Exp(0.35*rng.NormFloat64())
		sum += raw[k]
	}
	scale := target * float64(count) / sum
	sc.arena.reset()
	for k := range achs {
		pct := raw[k] * scale
		if pct > 97 {
			pct = 97
		}
		if pct < 0.1 {
			pct = 0.1
		}
		sc.arena.mark()
		sc.arena.buf = append(sc.arena.buf, "ACH_"...)
		sc.arena.buf = strconv.AppendUint(sc.arena.buf, uint64(g.AppID), 10)
		sc.arena.buf = append(sc.arena.buf, '_')
		sc.arena.buf = appendPadInt(sc.arena.buf, int64(k), 3)
		achs[k].GlobalPercent = math.Round(pct*10) / 10
	}
	sc.names = sc.arena.strings(sc.names[:0])
	for k := range achs {
		achs[k].Name = sc.names[k]
	}
	return achs
}

// completionTarget draws the game's average completion percentage: genre
// base (Adventure 19 %, Strategy 11 %, ...) with multiplicative noise whose
// mode sits near 5 % while the mean stays at the genre level — the §9
// mode/median/mean ordering caused by achievement hunters.
func completionTarget(cfg Config, rng *randx.RNG, g *Game) float64 {
	base, n := 0.0, 0
	for _, spec := range cfg.Genres {
		if g.Genres.Has(spec.Genre) {
			base += spec.AvgCompletion
			n++
		}
	}
	if n == 0 {
		base = 13
	} else {
		base /= float64(n)
	}
	// Lognormal with sigma chosen so mode ≈ 5 % when the mean is ~13 %:
	// mode = mean·e^{-3σ²/2}; σ=0.8 gives mode/mean ≈ 0.38.
	sigma := 0.8 * (1 + cfg.CompletionSigma*(rng.Float64()-0.5))
	mu := math.Log(base) - sigma*sigma/2
	v := math.Exp(mu + sigma*rng.NormFloat64())
	if v > 60 {
		v = 60
	}
	if v < 0.5 {
		v = 0.5
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
