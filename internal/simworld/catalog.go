package simworld

import (
	"fmt"
	"math"
	"sort"

	"steamstudy/internal/randx"
)

// catalogState carries catalog-derived lookup structures used by later
// generation stages.
type catalogState struct {
	games []Game
	// popularity holds the raw ownership weight of every game.
	popularity []float64
	// tiltedPickers sample games with the per-user price tilt applied;
	// tier i corresponds to tilt tiltLevels[i].
	tiltedPickers []*randx.Alias
	tiltLevels    []float64
	// multiplayerIdx marks multiplayer games for the playtime split.
	multiplayer []bool
}

// tiltTiers quantizes the per-user price preference into a small number of
// precomputed alias tables (sampling with a continuous tilt would require
// one table per user).
const tiltTiers = 5

// generateCatalog builds the product catalog: genre labels with the Fig 5
// mix, lognormal prices, the §6.2 multiplayer share, quality-driven
// popularity, and §9 achievement lists.
func generateCatalog(cfg Config, rng *randx.RNG) *catalogState {
	n := cfg.CatalogSize
	st := &catalogState{
		games:       make([]Game, n),
		popularity:  make([]float64, n),
		multiplayer: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		g := &st.games[i]
		g.AppID = uint32(10 + i*10) // Steam AppIDs are sparse multiples of 10
		g.Name = fmt.Sprintf("Game %05d", i)
		g.Type = productTypeFor(rng)
		g.ReleaseYear = 2003 + rng.Intn(11)
		g.Developer = fmt.Sprintf("Studio %03d", rng.Intn(1201)) // paper: 1,201 publishers
		g.Quality = rng.NormFloat64()

		// Genre labels: independent Bernoulli per genre at the configured
		// catalog fraction; ensure at least one label.
		for _, spec := range cfg.Genres {
			if rng.Bool(spec.CatalogFrac) {
				g.Genres |= spec.Genre
			}
		}
		if g.Genres == 0 {
			spec := cfg.Genres[rng.Intn(len(cfg.Genres))]
			g.Genres |= spec.Genre
		}

		g.Multiplayer = rng.Bool(cfg.MultiplayerFrac)
		st.multiplayer[i] = g.Multiplayer

		// Price: free-to-play titles are 0; others lognormal, rounded to
		// the storefront's .99 convention, capped.
		if g.Genres.Has(GenreFreeToPlay) || rng.Bool(cfg.FreeFrac) {
			g.PriceCents = 0
			g.Genres |= GenreFreeToPlay
		} else {
			dollars := math.Exp(cfg.PriceMeanLog + cfg.PriceSigmaLog*rng.NormFloat64())
			if dollars > cfg.PriceMax {
				dollars = cfg.PriceMax
			}
			whole := math.Floor(dollars)
			if whole < 1 {
				whole = 1
			}
			g.PriceCents = int64(whole)*100 - 1 // x.99 pricing
		}

		if rng.Bool(0.45) {
			g.Metacritic = clampInt(int(72+10*g.Quality+6*rng.NormFloat64()), 20, 98)
		}
	}

	// Popularity: Zipf over quality rank, boosted per genre, so the most
	// owned genres match Fig 5 (Action far ahead, then Strategy, Indie).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return st.games[order[a]].Quality > st.games[order[b]].Quality
	})
	for rank, idx := range order {
		w := math.Pow(float64(rank+1), -cfg.PopularityZipf)
		boost := 1.0
		for _, spec := range cfg.Genres {
			if st.games[idx].Genres.Has(spec.Genre) {
				boost *= spec.PopularityBoost
			}
		}
		st.popularity[idx] = w * boost
	}

	generateAchievements(cfg, rng, st)

	// Precompute tilted alias pickers: weight^tilt applied to price.
	st.tiltLevels = make([]float64, tiltTiers)
	st.tiltedPickers = make([]*randx.Alias, tiltTiers)
	for t := 0; t < tiltTiers; t++ {
		// Tilts spread across ±2.5: a wide spread of per-user average
		// price is what decouples account market value from raw library
		// size (the paper's value homophily ρ=.77 far exceeds its
		// games-owned homophily ρ=.45, which requires this decoupling).
		tilt := (float64(t)/(tiltTiers-1)*2 - 1) * 2.0
		st.tiltLevels[t] = tilt
		weights := make([]float64, n)
		for i := range weights {
			price := float64(st.games[i].PriceCents)/100 + 2 // +2 keeps free games samplable
			weights[i] = st.popularity[i] * math.Exp(tilt*math.Log(price))
		}
		st.tiltedPickers[t] = randx.NewAlias(weights)
	}
	return st
}

func productTypeFor(rng *randx.RNG) ProductType {
	// The paper's 6,156 "products" include non-game entries; keep a small
	// share of DLC/demo/video items (they carry genres and prices too).
	u := rng.Float64()
	switch {
	case u < 0.86:
		return ProductGame
	case u < 0.94:
		return ProductDLC
	case u < 0.98:
		return ProductDemo
	default:
		return ProductVideo
	}
}

// generateAchievements fills each game's achievement list per §9: ~22 % of
// games offer none; counts are lognormal (mode 12, median 24, mean 33)
// with a popularity loading inside the 1-90 band — bigger games invest in
// more achievements — which produces the paper's moderate correlation
// between achievements offered and cumulative playtime; a small "spam"
// population offers 90+ (up to 1,629) achievements on unpopular titles.
func generateAchievements(cfg Config, rng *randx.RNG, st *catalogState) {
	// Standardize log-popularity: the loading operates on a z-score so
	// the count marginal stays centered regardless of catalog size.
	var mean, sd float64
	logw := make([]float64, len(st.games))
	for i, w := range st.popularity {
		logw[i] = math.Log(w)
		mean += logw[i]
	}
	mean /= float64(len(logw))
	for _, lw := range logw {
		d := lw - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(logw)))
	if sd == 0 {
		sd = 1
	}
	for i := range st.games {
		g := &st.games[i]
		if g.Type != ProductGame {
			continue
		}
		zPop := (logw[i] - mean) / sd
		var count int
		switch {
		case rng.Bool(cfg.AchievementsNoneFrac):
			count = 0
		case rng.Bool(cfg.AchievementSpamFrac):
			// Achievement-spam titles: many achievements, low quality.
			count = 91 + int(rng.BoundedPareto(1.6, 1, float64(cfg.AchievementsMax-90)))
			if count > cfg.AchievementsMax {
				count = cfg.AchievementsMax
			}
			g.Quality -= 1.2 // these are low-effort titles
		default:
			scale := 1.0
			for _, spec := range cfg.Genres {
				if g.Genres.Has(spec.Genre) {
					scale *= spec.AchievementScale
				}
			}
			mu := cfg.AchievementsMedLog + cfg.AchievementsQualityB*zPop + math.Log(scale)
			count = int(math.Exp(mu + cfg.AchievementsSigmaLog*rng.NormFloat64()))
			// Ordinary games stay in the 1-90 band (only spam titles go
			// beyond). Redraw rather than clamp: clamping would pile an
			// artificial mode at 90.
			for tries := 0; count > 90 && tries < 6; tries++ {
				count = int(math.Exp(mu + cfg.AchievementsSigmaLog*rng.NormFloat64()))
			}
			if count > 90 {
				count = 12 + rng.Intn(60)
			}
			if count < 1 {
				count = 1
			}
		}
		if count == 0 {
			continue
		}
		g.Achievements = makeAchievementList(cfg, rng, g, count)
	}
}

// makeAchievementList builds count achievements whose global completion
// percentages decay from easy story beats to rare completionist goals,
// scaled so the game's average matches its genre target (§9).
func makeAchievementList(cfg Config, rng *randx.RNG, g *Game, count int) []Achievement {
	target := completionTarget(cfg, rng, g)
	achs := make([]Achievement, count)
	// Raw decaying curve: the k-th achievement is completed by a fraction
	// that decays geometrically with noise.
	raw := make([]float64, count)
	sum := 0.0
	for k := range raw {
		base := math.Exp(-2.8 * float64(k) / float64(count))
		raw[k] = base * math.Exp(0.35*rng.NormFloat64())
		sum += raw[k]
	}
	scale := target * float64(count) / sum
	for k := range achs {
		pct := raw[k] * scale
		if pct > 97 {
			pct = 97
		}
		if pct < 0.1 {
			pct = 0.1
		}
		achs[k] = Achievement{
			Name:          fmt.Sprintf("ACH_%s_%03d", achievementSlug(g), k),
			GlobalPercent: math.Round(pct*10) / 10,
		}
	}
	return achs
}

// completionTarget draws the game's average completion percentage: genre
// base (Adventure 19 %, Strategy 11 %, ...) with multiplicative noise whose
// mode sits near 5 % while the mean stays at the genre level — the §9
// mode/median/mean ordering caused by achievement hunters.
func completionTarget(cfg Config, rng *randx.RNG, g *Game) float64 {
	base, n := 0.0, 0
	for _, spec := range cfg.Genres {
		if g.Genres.Has(spec.Genre) {
			base += spec.AvgCompletion
			n++
		}
	}
	if n == 0 {
		base = 13
	} else {
		base /= float64(n)
	}
	// Lognormal with sigma chosen so mode ≈ 5 % when the mean is ~13 %:
	// mode = mean·e^{-3σ²/2}; σ=0.8 gives mode/mean ≈ 0.38.
	sigma := 0.8 * (1 + cfg.CompletionSigma*(rng.Float64()-0.5))
	mu := math.Log(base) - sigma*sigma/2
	v := math.Exp(mu + sigma*rng.NormFloat64())
	if v > 60 {
		v = 60
	}
	if v < 0.5 {
		v = 0.5
	}
	return v
}

func achievementSlug(g *Game) string {
	return fmt.Sprintf("%d", g.AppID)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
