// Package simworld synthesizes a complete Steam-like universe whose
// statistical structure is calibrated to the measurements published in
// "Condensing Steam" (IMC 2016): marginal distributions pass through the
// paper's Table 3 percentiles, Spearman correlations follow §7 via a
// Gaussian copula, friendships form homophilously with the 250/300 caps of
// Fig 2, the catalog carries the genre mix of Fig 5, and special
// sub-populations (collectors, idlers, achievement hunters) reproduce the
// anomalies the paper calls out. The real 2013 snapshot is unobtainable;
// this generator is the documented substitution for it (see DESIGN.md §2).
package simworld

import (
	"time"

	"steamstudy/internal/steamid"
)

// Genre is a bitmask of the Steam store genre labels used in the paper's
// Figures 5 and 9.
type Genre uint16

const (
	GenreAction Genre = 1 << iota
	GenreStrategy
	GenreIndie
	GenreRPG
	GenreAdventure
	GenreSimulation
	GenreCasual
	GenreRacing
	GenreSports
	GenreFreeToPlay
	GenreMMO
	genreCount = 11
)

// GenreNames lists the display names in bit order.
var GenreNames = [genreCount]string{
	"Action", "Strategy", "Indie", "RPG", "Adventure",
	"Simulation", "Casual", "Racing", "Sports", "Free to Play", "MMO",
}

// Has reports whether the genre mask includes g.
func (m Genre) Has(g Genre) bool { return m&g != 0 }

// Names returns the display names of all set genres.
func (m Genre) Names() []string {
	var out []string
	for i := 0; i < genreCount; i++ {
		if m&(1<<i) != 0 {
			out = append(out, GenreNames[i])
		}
	}
	return out
}

// ProductType is the storefront product classification (§3.1 mentions
// games, trailers, demos, etc.).
type ProductType uint8

const (
	ProductGame ProductType = iota
	ProductDLC
	ProductDemo
	ProductVideo
)

// String returns the storefront type label.
func (p ProductType) String() string {
	switch p {
	case ProductGame:
		return "game"
	case ProductDLC:
		return "dlc"
	case ProductDemo:
		return "demo"
	case ProductVideo:
		return "video"
	default:
		return "unknown"
	}
}

// Achievement is one in-game achievement with its global completion
// percentage among owners (the only per-achievement statistic the Steam
// API exposes, per §9).
type Achievement struct {
	Name          string
	GlobalPercent float64
}

// Game is one catalog product.
type Game struct {
	AppID       uint32
	Name        string
	Type        ProductType
	Genres      Genre
	Multiplayer bool
	// PriceCents is the current storefront price (the paper's market-value
	// approximation uses current prices).
	PriceCents int64
	// Quality is the latent quality score driving popularity and, within
	// the 1-90 band, achievement counts (§9's moderate correlation).
	Quality float64
	// Metacritic is the review score (0 = unrated).
	Metacritic int
	// ReleaseYear is the storefront release year.
	ReleaseYear int
	Developer   string
	// Achievements offered by the game (may be empty).
	Achievements []Achievement
}

// AvgCompletion returns the mean global completion percentage across the
// game's achievements (0 when none are offered).
func (g *Game) AvgCompletion() float64 {
	if len(g.Achievements) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range g.Achievements {
		sum += a.GlobalPercent
	}
	return sum / float64(len(g.Achievements))
}

// OwnedGame links a user to a catalog entry with the playtime statistics
// the Web API reports: lifetime minutes and the rolling two-week minutes.
// Field order matters: the int64 first packs the struct into 16 bytes
// (int32-first costs 24 via padding), and at paper scale the library
// slabs are the largest resident component — ~50 M entries for 5 M
// users.
type OwnedGame struct {
	TotalMinutes   int64
	GameIdx        int32
	TwoWeekMinutes int32
}

// PersonaFlags mark the special sub-populations the paper identifies.
type PersonaFlags uint8

const (
	// PersonaCollector acquires games far beyond its playtime (Fig 4/8
	// upticks; the invite-only big-library groups of §5).
	PersonaCollector PersonaFlags = 1 << iota
	// PersonaIdler leaves games running to rack up two-week playtime near
	// the 336-hour maximum (§6.1, 0.01 % of users).
	PersonaIdler
	// PersonaAchievementHunter aggressively completes achievements,
	// skewing mean completion above the median (§9).
	PersonaAchievementHunter
	// PersonaFacebookLinked raises the friend cap from 250 to 300 (§4.1).
	PersonaFacebookLinked
	// PersonaValveEmployee marks the cosmetic Valve flag (§3.2).
	PersonaValveEmployee
)

// Has reports whether the flag set includes f.
func (p PersonaFlags) Has(f PersonaFlags) bool { return p&f != 0 }

// User is one Steam account.
type User struct {
	ID steamid.ID
	// Created is the account creation time (Unix seconds).
	Created int64
	// Country is the self-reported country code ("" for the ~89.3 % who
	// do not report one).
	Country string
	// City is the self-reported city ("" for the ~96 % who do not).
	City string
	// Persona flags mark special sub-populations.
	Persona PersonaFlags
	// BadgeLevel is the Steam level; each level adds five friend slots.
	BadgeLevel uint8

	// Library is the owned-games list with playtimes.
	Library []OwnedGame
	// Groups are indexes into Universe.Groups.
	Groups []int32

	// TotalMinutes and TwoWeekMinutes cache the library sums.
	TotalMinutes   int64
	TwoWeekMinutes int64
	// ValueCents caches the current market value of the library.
	ValueCents int64
}

// FriendCap returns the maximum number of friends this account may have
// under the §4.1 policies.
func (u *User) FriendCap() int {
	cap := 250
	if u.Persona.Has(PersonaFacebookLinked) {
		cap = 300
	}
	return cap + 5*int(u.BadgeLevel)
}

// GamesOwned returns the library size.
func (u *User) GamesOwned() int { return len(u.Library) }

// GamesPlayed returns the number of library entries with nonzero total
// playtime.
func (u *User) GamesPlayed() int {
	n := 0
	for _, g := range u.Library {
		if g.TotalMinutes > 0 {
			n++
		}
	}
	return n
}

// GroupType is the §4.2 manual categorization, which the generator
// assigns explicitly so the Table 2 analysis can recover it from data.
type GroupType uint8

const (
	GroupGameServer GroupType = iota
	GroupSingleGame
	GroupGamingCommunity
	GroupSpecialInterest
	GroupSteam
	GroupPublisher
	groupTypeCount
)

// String returns the Table 2 label.
func (t GroupType) String() string {
	switch t {
	case GroupGameServer:
		return "Game Server"
	case GroupSingleGame:
		return "Single Game"
	case GroupGamingCommunity:
		return "Gaming Community"
	case GroupSpecialInterest:
		return "Special Interest"
	case GroupSteam:
		return "Steam"
	case GroupPublisher:
		return "Publisher"
	default:
		return "unknown"
	}
}

// Group is one Steam community group.
type Group struct {
	ID   uint64
	Name string
	Type GroupType
	// FocalGame is the game a Single Game / Game Server group organizes
	// around (-1 for none).
	FocalGame int32
	// Members are user indexes.
	Members []int32
}

// Friendship is one bidirectional edge with its formation time
// (Unix seconds; timestamps before September 2008 were not recorded by
// Steam, which the analysis accounts for, but the generator always knows
// the true time).
type Friendship struct {
	A, B  int32
	Since int64
}

// Universe is a complete synthetic Steam snapshot.
type Universe struct {
	Seed   int64
	Config Config

	Users  []User
	Games  []Game
	Groups []Group
	// Friendships is the global edge list (A < B).
	Friendships []Friendship

	// CollectedAt is the nominal end-of-crawl time.
	CollectedAt int64
}

// FriendCounts returns the degree of every user.
func (u *Universe) FriendCounts() []int {
	deg := make([]int, len(u.Users))
	for _, f := range u.Friendships {
		deg[f.A]++
		deg[f.B]++
	}
	return deg
}

// Adjacency returns per-user neighbor lists built from the edge list.
func (u *Universe) Adjacency() [][]int32 {
	deg := u.FriendCounts()
	adj := make([][]int32, len(u.Users))
	for i, d := range deg {
		adj[i] = make([]int32, 0, d)
	}
	for _, f := range u.Friendships {
		adj[f.A] = append(adj[f.A], f.B)
		adj[f.B] = append(adj[f.B], f.A)
	}
	return adj
}

// TimeRange constants for the synthetic history.
var (
	// SteamLaunch is the service start (2003-09-12).
	SteamLaunch = time.Date(2003, 9, 12, 0, 0, 0, 0, time.UTC).Unix()
	// FriendTimestampsFrom is when Steam began recording friendship
	// timestamps (September 2008, per §4.1).
	FriendTimestampsFrom = time.Date(2008, 9, 1, 0, 0, 0, 0, time.UTC).Unix()
	// FirstSnapshotEnd is the nominal end of the first crawl
	// (2013-11-05, per §3.1).
	FirstSnapshotEnd = time.Date(2013, 11, 5, 0, 0, 0, 0, time.UTC).Unix()
	// SecondSnapshotEnd is the nominal end of the second crawl
	// (2014-10-03, per §8).
	SecondSnapshotEnd = time.Date(2014, 10, 3, 0, 0, 0, 0, time.UTC).Unix()
)
