package analysis

import (
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
)

// The streaming Table 4 input builder must reproduce the in-memory row
// set exactly — names, order, data vectors, FixedXmin — from both the
// single-file and the sharded layouts, so the classification downstream
// is identical by construction.
func TestStreamTable4InputsMatchInMemory(t *testing.T) {
	cfg := simworld.DefaultConfig(2000)
	cfg.CatalogSize = 250
	uni := simworld.MustGenerate(cfg, 3)
	snap := dataset.FromUniverse(uni)
	years := []int{2011, 2012, 2013}

	v := Extract(snap)
	want := StandardTable4Inputs(v, nil, years)

	dir := t.TempDir()
	single := filepath.Join(dir, "snap.jsonl")
	sharded := filepath.Join(dir, "snap.d")
	if err := snap.Save(single); err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(sharded, dataset.WithShardRecords(256)); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{single, sharded} {
		got, err := StreamTable4Inputs(path, "", years)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d inputs, want %d", path, len(got), len(want))
		}
		for i := range want {
			if got[i].Name != want[i].Name {
				t.Fatalf("%s input %d: name %q, want %q", path, i, got[i].Name, want[i].Name)
			}
			if got[i].Discrete != want[i].Discrete || got[i].FixedXmin != want[i].FixedXmin {
				t.Fatalf("%s input %q: options diverge (%v/%v vs %v/%v)", path, got[i].Name,
					got[i].Discrete, got[i].FixedXmin, want[i].Discrete, want[i].FixedXmin)
			}
			if !reflect.DeepEqual(got[i].Data, want[i].Data) {
				t.Fatalf("%s input %q: data diverges (%d vs %d values)",
					path, got[i].Name, len(got[i].Data), len(want[i].Data))
			}
		}
	}
}

// The second-snapshot rows must stream too.
func TestStreamTable4InputsSecondSnapshot(t *testing.T) {
	cfg := simworld.DefaultConfig(1200)
	cfg.CatalogSize = 150
	uni := simworld.MustGenerate(cfg, 4)
	snap := dataset.FromUniverse(uni)

	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.jsonl")
	p2 := filepath.Join(dir, "b.d")
	if err := snap.Save(p1); err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(p2, dataset.WithShardRecords(128)); err != nil {
		t.Fatal(err)
	}
	v := Extract(snap)
	want := StandardTable4Inputs(v, v, nil)
	got, err := StreamTable4Inputs(p1, p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d inputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || !reflect.DeepEqual(got[i].Data, want[i].Data) {
			t.Fatalf("input %d (%q) diverges", i, want[i].Name)
		}
	}
}
