package analysis

import (
	"sort"

	"steamstudy/internal/stats"
)

// SnapshotComparison carries the §8 first-vs-second snapshot findings:
// the tail inflates dramatically while the 80th percentile barely moves.
type SnapshotComparison struct {
	// Games owned.
	MaxGamesFirst, MaxGamesSecond int
	P80GamesFirst, P80GamesSecond float64
	// Account market value (dollars).
	MaxValueFirst, MaxValueSecond float64
	P80ValueFirst, P80ValueSecond float64
	// Growth ratios (second / first).
	TailGamesGrowth float64
	P80GamesGrowth  float64
	TailValueGrowth float64
	P80ValueGrowth  float64
}

// Section8Evolution reproduces the §8 comparison between two snapshots of
// the same population.
func Section8Evolution(first, second *Vectors) SnapshotComparison {
	var c SnapshotComparison
	for _, g := range first.Games {
		if int(g) > c.MaxGamesFirst {
			c.MaxGamesFirst = int(g)
		}
	}
	for _, g := range second.Games {
		if int(g) > c.MaxGamesSecond {
			c.MaxGamesSecond = int(g)
		}
	}
	for _, v := range first.ValueD {
		if v > c.MaxValueFirst {
			c.MaxValueFirst = v
		}
	}
	for _, v := range second.ValueD {
		if v > c.MaxValueSecond {
			c.MaxValueSecond = v
		}
	}
	c.P80GamesFirst = stats.Percentile(nonZero(first.Games), 80)
	c.P80GamesSecond = stats.Percentile(nonZero(second.Games), 80)
	c.P80ValueFirst = stats.Percentile(nonZero(first.ValueD), 80)
	c.P80ValueSecond = stats.Percentile(nonZero(second.ValueD), 80)
	if c.MaxGamesFirst > 0 {
		c.TailGamesGrowth = float64(c.MaxGamesSecond) / float64(c.MaxGamesFirst)
	}
	if c.P80GamesFirst > 0 {
		c.P80GamesGrowth = c.P80GamesSecond / c.P80GamesFirst
	}
	if c.MaxValueFirst > 0 {
		c.TailValueGrowth = c.MaxValueSecond / c.MaxValueFirst
	}
	if c.P80ValueFirst > 0 {
		c.P80ValueGrowth = c.P80ValueSecond / c.P80ValueFirst
	}
	return c
}

// WeekMatrixResult carries Fig 12: per-day playtime for a sample of users
// over one week, ordered by their day-one playtime.
type WeekMatrixResult struct {
	// Minutes[d][k] is the minutes played on day d by the k-th user of
	// the day-one ordering.
	Minutes [7][]int32
	Users   int
	// DayOneRankPersistence is the Spearman correlation between users'
	// day-one and rest-of-week playtime — the "heavy hitters stay heavy"
	// gradient of Fig 12.
	DayOneRankPersistence float64
	// SwitchedOnFrac is the fraction of users idle on day one who played
	// later in the week — the paper's "playtime is not a characteristic
	// unique to a singular group" finding.
	SwitchedOnFrac float64
}

// Figure12WeekMatrix reproduces Fig 12 from per-user week series. The
// series provider abstracts the data source (the simulator synthesizes
// them; a real crawl would sample daily).
func Figure12WeekMatrix(userIdxs []int, series func(userIdx int) [7]int32) WeekMatrixResult {
	var rows [][7]int32
	for _, u := range userIdxs {
		w := series(u)
		active := false
		for _, m := range w {
			if m > 0 {
				active = true
				break
			}
		}
		if active {
			rows = append(rows, w)
		}
	}
	// Order by day-one playtime, as the figure does.
	sort.Slice(rows, func(a, b int) bool { return rows[a][0] < rows[b][0] })
	res := WeekMatrixResult{Users: len(rows)}
	for d := 0; d < 7; d++ {
		res.Minutes[d] = make([]int32, len(rows))
		for k, r := range rows {
			res.Minutes[d][k] = r[d]
		}
	}
	var day1, rest []float64
	idleDay1, switched := 0, 0
	for _, r := range rows {
		var restSum int32
		for d := 1; d < 7; d++ {
			restSum += r[d]
		}
		day1 = append(day1, float64(r[0]))
		rest = append(rest, float64(restSum))
		if r[0] == 0 {
			idleDay1++
			if restSum > 0 {
				switched++
			}
		}
	}
	res.DayOneRankPersistence = stats.Spearman(day1, rest)
	if idleDay1 > 0 {
		res.SwitchedOnFrac = float64(switched) / float64(idleDay1)
	}
	return res
}
