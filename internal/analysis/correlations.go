package analysis

import (
	"steamstudy/internal/stats"
)

// CorrelationRow is one §7 correlation with its verbal strength.
type CorrelationRow struct {
	Pair     string
	Rho      float64
	Strength string
}

// Section7Correlations reproduces the §7 pairwise correlations. Following
// the paper's framing ("do players who own more games play more?"), the
// correlations are computed over users who own at least one game.
func Section7Correlations(v *Vectors) []CorrelationRow {
	var gm, fr, tot, tw []float64
	for i := range v.Games {
		if v.Games[i] == 0 {
			continue
		}
		gm = append(gm, v.Games[i])
		fr = append(fr, v.Friends[i])
		tot = append(tot, v.TotalH[i])
		tw = append(tw, v.TwoWkH[i])
	}
	// Rank each column once. stats.Spearman re-ranks both inputs on every
	// call, which ranked gm three times and fr/tot/tw twice each across
	// the five pairs; SpearmanRanked over cached mid-ranks is bit-identical
	// (Spearman is defined as Pearson over these ranks).
	rgm, rfr := stats.Ranks(gm), stats.Ranks(fr)
	rtot, rtw := stats.Ranks(tot), stats.Ranks(tw)
	row := func(pair string, rx, ry []float64) CorrelationRow {
		rho := stats.SpearmanRanked(rx, ry)
		return CorrelationRow{Pair: pair, Rho: rho, Strength: stats.CorrelationStrength(rho)}
	}
	return []CorrelationRow{
		row("games owned vs friends", rgm, rfr),
		row("games owned vs two-week playtime", rgm, rtw),
		row("games owned vs total playtime", rgm, rtot),
		row("friends vs two-week playtime", rfr, rtw),
		row("friends vs total playtime", rfr, rtot),
	}
}

// HomophilyRow is one Fig 11 / §7 homophily correlation.
type HomophilyRow struct {
	Attribute string
	Rho       float64
	Strength  string
	// Pairs is the number of (user, neighbor-average) points.
	Pairs int
}

// Figure11Homophily reproduces the §7 homophily correlations: each user's
// attribute against the average of their friends' attribute.
func Figure11Homophily(v *Vectors) []HomophilyRow {
	row := func(name string, attr []float64) HomophilyRow {
		own, nbr := v.G.NeighborAverages(attr, 1)
		rho := stats.Spearman(own, nbr)
		return HomophilyRow{
			Attribute: name, Rho: rho,
			Strength: stats.CorrelationStrength(rho),
			Pairs:    len(own),
		}
	}
	return []HomophilyRow{
		row("account market value", v.ValueD),
		row("number of friends", v.Friends),
		row("total playtime", v.TotalH),
		row("games owned", v.Games),
	}
}

// HomophilyScatter returns the Fig 11 scatter data (own value vs friends'
// average value) for plotting, subsampled to at most maxPoints.
func HomophilyScatter(v *Vectors, maxPoints int) (own, nbr []float64) {
	own, nbr = v.G.NeighborAverages(v.ValueD, 1)
	if maxPoints > 0 && len(own) > maxPoints {
		step := float64(len(own)) / float64(maxPoints)
		so := make([]float64, 0, maxPoints)
		sn := make([]float64, 0, maxPoints)
		for i := 0; i < maxPoints; i++ {
			j := int(float64(i) * step)
			so = append(so, own[j])
			sn = append(sn, nbr[j])
		}
		return so, sn
	}
	return own, nbr
}

// LocalityResult carries the §4.1 friendship-locality statistics.
type LocalityResult struct {
	// InternationalFrac is the share of friendships between users who
	// both report a country that cross countries (paper: 30.34 %).
	InternationalFrac float64
	// CrossCityFrac is the share of friendships between users who both
	// report a city that cross cities (paper: 79.84 %).
	CrossCityFrac float64
	CountryPairs  int
	CityPairs     int
}

// Section4Locality reproduces the §4.1 locality statistics.
func Section4Locality(v *Vectors) LocalityResult {
	var res LocalityResult
	var intl, cross int
	for _, e := range v.Snap.FriendshipEdges() {
		a, b := &v.Snap.Users[e.A], &v.Snap.Users[e.B]
		if a.Country != "" && b.Country != "" {
			res.CountryPairs++
			if a.Country != b.Country {
				intl++
			}
		}
		if a.City != "" && b.City != "" {
			res.CityPairs++
			if a.City != b.City {
				cross++
			}
		}
	}
	if res.CountryPairs > 0 {
		res.InternationalFrac = float64(intl) / float64(res.CountryPairs)
	}
	if res.CityPairs > 0 {
		res.CrossCityFrac = float64(cross) / float64(res.CityPairs)
	}
	return res
}
