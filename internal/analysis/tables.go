package analysis

import (
	"sort"

	"steamstudy/internal/dataset"
	"steamstudy/internal/heavytail"
	"steamstudy/internal/par"
	"steamstudy/internal/stats"
)

// CountryRow is one row of Table 1.
type CountryRow struct {
	Rank    int
	Country string
	Percent float64
}

// CountryTable reproduces Table 1: the top-N countries among users who
// self-report one, plus an aggregate "Other" row.
type CountryTable struct {
	ReportFraction float64 // share of users reporting a country
	Rows           []CountryRow
	OtherCount     int     // number of countries folded into Other
	OtherPercent   float64 // combined share of the folded countries
}

// Table1Countries computes the reported-country breakdown.
func Table1Countries(s *dataset.Snapshot, topN int) CountryTable {
	counts := map[string]int{}
	reporters := 0
	for i := range s.Users {
		if c := s.Users[i].Country; c != "" {
			counts[c]++
			reporters++
		}
	}
	type kv struct {
		c string
		n int
	}
	all := make([]kv, 0, len(counts))
	for c, n := range counts {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].c < all[b].c
	})
	t := CountryTable{}
	if len(s.Users) > 0 {
		t.ReportFraction = float64(reporters) / float64(len(s.Users))
	}
	if reporters == 0 {
		return t
	}
	for i, e := range all {
		if i >= topN {
			t.OtherCount++
			t.OtherPercent += float64(e.n) / float64(reporters) * 100
			continue
		}
		t.Rows = append(t.Rows, CountryRow{
			Rank: i + 1, Country: e.c,
			Percent: float64(e.n) / float64(reporters) * 100,
		})
	}
	return t
}

// GroupTypeRow is one row of Table 2.
type GroupTypeRow struct {
	Type    string
	Count   int
	Percent float64
}

// GroupTypeTable reproduces Table 2: the type mix of the topN largest
// groups (the paper used 250). Untyped groups (the crawler could not
// categorize them) are reported under "Unknown".
func Table2GroupTypes(s *dataset.Snapshot, topN int) []GroupTypeRow {
	order := make([]int, len(s.Groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := &s.Groups[order[a]], &s.Groups[order[b]]
		if len(ga.Members) != len(gb.Members) {
			return len(ga.Members) > len(gb.Members)
		}
		return ga.GID < gb.GID
	})
	if topN > len(order) {
		topN = len(order)
	}
	counts := map[string]int{}
	for _, gi := range order[:topN] {
		ty := s.Groups[gi].Type
		if ty == "" {
			ty = "Unknown"
		}
		counts[ty]++
	}
	var rows []GroupTypeRow
	for ty, n := range counts {
		rows = append(rows, GroupTypeRow{
			Type: ty, Count: n, Percent: float64(n) / float64(topN) * 100,
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Count != rows[b].Count {
			return rows[a].Count > rows[b].Count
		}
		return rows[a].Type < rows[b].Type
	})
	return rows
}

// PercentileRow is one row of Table 3.
type PercentileRow struct {
	Attribute string
	// P50..P99 follow the paper's columns.
	P50, P80, P90, P95, P99 float64
}

// Table3Percentiles reproduces Table 3. Following the paper's
// presentation, count attributes (friends, games, groups, total playtime,
// market value) are computed over users with a nonzero value, while
// two-week playtime is computed over all users (its published 50th and
// 80th percentiles are zero).
func Table3Percentiles(v *Vectors) []PercentileRow {
	row := func(name string, xs []float64) PercentileRow {
		p := stats.Percentiles(xs, 50, 80, 90, 95, 99)
		return PercentileRow{Attribute: name, P50: p[0], P80: p[1], P90: p[2], P95: p[3], P99: p[4]}
	}
	return []PercentileRow{
		row("Friends", nonZero(v.Friends)),
		row("Owned games", nonZero(v.Games)),
		row("Group membership", nonZero(v.Groups)),
		row("Account market value ($)", nonZero(v.ValueD)),
		row("Total playtime (hrs)", nonZero(v.TotalH)),
		row("Two-week playtime (hrs)", v.TwoWkH),
	}
}

// ClassificationRow is one row of Table 4.
type ClassificationRow struct {
	Distribution string
	Comparisons  heavytail.ComparisonSet
	Class        heavytail.Class
	Alpha        float64
	Xmin         float64
	TailN        int
	// LowResolution marks rows whose tail has too few distinct values for
	// the pairwise tests to be reliable (e.g. per-year friendship slices
	// at sub-paper population scales, where most degrees are 1).
	LowResolution bool
	Err           string // non-empty when the fit failed (degenerate data)
}

// Table4Input names one distribution to classify.
type Table4Input struct {
	Name     string
	Data     []float64
	Discrete bool
	// FixedXmin pins the tail threshold (0 scans). Count distributions
	// with small per-slice tails (per-year friendship degrees) classify
	// from the whole support, as the paper's full-population fits
	// effectively did.
	FixedXmin float64
}

// Table4Classification runs the heavy-tail classification pipeline on the
// given distributions — the paper's Appendix table. Distributions are
// classified on their nonzero values with a scanned xmin. Each metric is
// classified independently on the worker pool (workers <= 0 means one per
// CPU, 1 forces serial) and its row written to its input's slot, so the
// table is identical for any worker count.
func Table4Classification(inputs []Table4Input, workers int) []ClassificationRow {
	rows := make([]ClassificationRow, len(inputs))
	par.For(workers, len(inputs), func(i int) {
		in := inputs[i]
		row := ClassificationRow{Distribution: in.Name}
		res, err := heavytail.ClassifyData(in.Data, heavytail.Options{
			Discrete:  in.Discrete,
			FixedXmin: in.FixedXmin,
			Workers:   workers,
		})
		if err != nil {
			row.Err = err.Error()
			rows[i] = row
			return
		}
		row.Comparisons = res.Comparisons
		row.Class = res.Class
		row.Alpha = res.Fit.Alpha()
		row.Xmin = res.Fit.Xmin
		row.TailN = len(res.Fit.Tail)
		row.LowResolution = distinctCount(res.Fit.Tail, 12) < 12
		rows[i] = row
	})
	return rows
}

// StandardTable4Inputs builds the paper's Table 4 row set from one or two
// snapshots (the second-snapshot rows are included when second != nil),
// plus per-year friendship distributions derived from edge timestamps.
func StandardTable4Inputs(v *Vectors, second *Vectors, years []int) []Table4Input {
	var inputs []Table4Input
	add := func(name string, data []float64, discrete bool) {
		in := Table4Input{Name: name, Data: data, Discrete: discrete}
		if discrete {
			in.FixedXmin = 1
		} else {
			// Classify continuous attributes from the bulk of their
			// support: a scanned xmin can retreat deep into a thin tail
			// where the power-law-vs-exponential gate loses power at
			// sub-paper population scales.
			in.FixedXmin = stats.Percentile(data, 5)
		}
		inputs = append(inputs, in)
	}
	add("Account market values", nonZero(v.ValueD), false)
	add("Total playtime", nonZero(v.TotalH), false)
	add("Two-week playtime", nonZero(v.TwoWkH), false)
	add("Game ownership", nonZero(v.Games), true)
	add("Played game ownership", nonZero(v.Played), true)
	add("Group membership per user", nonZero(v.Groups), true)

	// Group sizes.
	var sizes []float64
	for i := range v.Snap.Groups {
		if n := len(v.Snap.Groups[i].Members); n > 0 {
			sizes = append(sizes, float64(n))
		}
	}
	add("Group size", sizes, true)

	if second != nil {
		add("Account market values (second snapshot)", nonZero(second.ValueD), false)
		add("Total playtime (second snapshot)", nonZero(second.TotalH), false)
		add("Two-week playtime (second snapshot)", nonZero(second.TwoWkH), false)
		add("Game ownership (second snapshot)", nonZero(second.Games), true)
		add("Played game ownership (second snapshot)", nonZero(second.Played), true)
	}

	for _, y := range years {
		cum := v.G.DegreesAt(endOfYear(y))
		add("Friendship (through "+itoa(y)+")", positiveInts(cum), true)
		yearly := v.G.DegreesAdded(endOfYear(y-1), endOfYear(y))
		add("Friendship ("+itoa(y)+" only)", positiveInts(yearly), true)
	}
	return inputs
}

// distinctCount counts distinct values in sorted data, stopping at cap.
func distinctCount(sorted []float64, cap int) int {
	n := 0
	for i := 0; i < len(sorted); i++ {
		if i == 0 || sorted[i] != sorted[i-1] {
			n++
			if n >= cap {
				return n
			}
		}
	}
	return n
}

func positiveInts(xs []int) []float64 {
	var out []float64
	for _, x := range xs {
		if x > 0 {
			out = append(out, float64(x))
		}
	}
	return out
}
