// Out-of-core Table 4. StandardTable4Inputs needs Extract's Vectors — a
// fully loaded snapshot plus the friendship graph. At paper scale the
// snapshot does not fit in memory, so StreamTable4Inputs builds the same
// row set from the streaming section readers instead: one pass over the
// catalog (prices), one over the users (attribute columns and per-year
// friend counts), one over the groups (sizes). Only the positive-valued
// Table 4 vectors are materialized — for a sharded snapshot directory
// the working set is the vectors plus a bounded decode window.

package analysis

import (
	"steamstudy/internal/dataset"
	"steamstudy/internal/stats"
)

// t4Columns are the streamed equivalents of the Vectors columns Table 4
// consumes, already filtered to positive values (what nonZero and
// positiveInts produce on the in-memory path, in the same user order).
type t4Columns struct {
	valueD, totalH, twoWkH []float64
	games, played, groups  []float64
	sizes                  []float64
	through, only          [][]float64 // one slot per requested year
}

// StreamTable4Inputs builds exactly StandardTable4Inputs' row set — same
// names, order, data values and FixedXmin policy — by streaming the
// snapshot at path (and optionally a second snapshot) instead of loading
// it. The snapshot must be referentially clean: the per-user friend
// lists stand in for graph degrees, which matches the graph-based path
// only when friendships are symmetric with agreeing timestamps (fsck
// verifies exactly that).
func StreamTable4Inputs(path, secondPath string, years []int, opts ...dataset.Option) ([]Table4Input, error) {
	c, err := streamT4Columns(path, years, opts)
	if err != nil {
		return nil, err
	}

	var inputs []Table4Input
	add := func(name string, data []float64, discrete bool) {
		in := Table4Input{Name: name, Data: data, Discrete: discrete}
		if discrete {
			in.FixedXmin = 1
		} else {
			// Same bulk-of-support policy as StandardTable4Inputs.
			in.FixedXmin = stats.Percentile(data, 5)
		}
		inputs = append(inputs, in)
	}
	add("Account market values", c.valueD, false)
	add("Total playtime", c.totalH, false)
	add("Two-week playtime", c.twoWkH, false)
	add("Game ownership", c.games, true)
	add("Played game ownership", c.played, true)
	add("Group membership per user", c.groups, true)
	add("Group size", c.sizes, true)

	if secondPath != "" {
		s2, err := streamT4Columns(secondPath, nil, opts)
		if err != nil {
			return nil, err
		}
		add("Account market values (second snapshot)", s2.valueD, false)
		add("Total playtime (second snapshot)", s2.totalH, false)
		add("Two-week playtime (second snapshot)", s2.twoWkH, false)
		add("Game ownership (second snapshot)", s2.games, true)
		add("Played game ownership (second snapshot)", s2.played, true)
	}

	for yi, y := range years {
		add("Friendship (through "+itoa(y)+")", c.through[yi], true)
		add("Friendship ("+itoa(y)+" only)", c.only[yi], true)
	}
	return inputs, nil
}

func streamT4Columns(path string, years []int, opts []dataset.Option) (*t4Columns, error) {
	// Catalog pass: storefront prices for the market-value column.
	price := make(map[uint32]int64)
	gr, err := dataset.OpenSection(path, dataset.SectionGames, opts...)
	if err != nil {
		return nil, err
	}
	var rec dataset.Record
	for {
		ok, err := gr.Next(&rec)
		if err != nil {
			gr.Close()
			return nil, err
		}
		if !ok {
			break
		}
		price[rec.Game.AppID] = rec.Game.PriceCents
	}
	if err := gr.Close(); err != nil {
		return nil, err
	}

	c := &t4Columns{
		through: make([][]float64, len(years)),
		only:    make([][]float64, len(years)),
	}
	// Year window bounds, precomputed: "through y" counts edges formed
	// strictly before end-of-year (DegreesAt), "y only" those within the
	// year (DegreesAdded).
	hiCut := make([]int64, len(years))
	loCut := make([]int64, len(years))
	for yi, y := range years {
		hiCut[yi] = endOfYear(y)
		loCut[yi] = endOfYear(y - 1)
	}

	ur, err := dataset.OpenSection(path, dataset.SectionUsers, opts...)
	if err != nil {
		return nil, err
	}
	for {
		ok, err := ur.Next(&rec)
		if err != nil {
			ur.Close()
			return nil, err
		}
		if !ok {
			break
		}
		u := &rec.User
		if len(u.Games) > 0 {
			c.games = append(c.games, float64(len(u.Games)))
		}
		if len(u.Groups) > 0 {
			c.groups = append(c.groups, float64(len(u.Groups)))
		}
		var tot, tw, val int64
		played := 0
		for _, g := range u.Games {
			tot += g.TotalMinutes
			tw += int64(g.TwoWeekMinutes)
			val += price[g.AppID]
			if g.TotalMinutes > 0 {
				played++
			}
		}
		if played > 0 {
			c.played = append(c.played, float64(played))
		}
		if tot > 0 {
			c.totalH = append(c.totalH, float64(tot)/60)
		}
		if tw > 0 {
			c.twoWkH = append(c.twoWkH, float64(tw)/60)
		}
		if val > 0 {
			c.valueD = append(c.valueD, float64(val)/100)
		}
		for yi := range years {
			through, within := 0, 0
			for _, f := range u.Friends {
				if f.Since < hiCut[yi] {
					through++
					if f.Since >= loCut[yi] {
						within++
					}
				}
			}
			if through > 0 {
				c.through[yi] = append(c.through[yi], float64(through))
			}
			if within > 0 {
				c.only[yi] = append(c.only[yi], float64(within))
			}
		}
	}
	if err := ur.Close(); err != nil {
		return nil, err
	}

	pr, err := dataset.OpenSection(path, dataset.SectionGroups, opts...)
	if err != nil {
		return nil, err
	}
	for {
		ok, err := pr.Next(&rec)
		if err != nil {
			pr.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if n := len(rec.Group.Members); n > 0 {
			c.sizes = append(c.sizes, float64(n))
		}
	}
	if err := pr.Close(); err != nil {
		return nil, err
	}
	return c, nil
}
