package analysis

import (
	"sort"

	"steamstudy/internal/dataset"
	"steamstudy/internal/stats"
)

// AchievementsResult carries the §9 findings.
type AchievementsResult struct {
	// Offered-count distribution statistics (paper: mode 12, median 24,
	// mean 33.1, max 1629 over games offering achievements... the paper
	// counts games with zero as part of the range 0-1629).
	OfferedMode   float64
	OfferedMedian float64
	OfferedMean   float64
	OfferedMax    int

	// Correlation between offered achievements and cumulative playtime:
	// overall (paper: R=0.16), within 1-90 offered (R=0.53), and beyond
	// 90 (R=-0.02).
	RhoAll     float64
	Rho1to90   float64
	RhoOver90  float64
	GamesTotal int

	// Completion statistics by multiplayer split (paper: modes 5 %/5 %,
	// medians 11 %/12 %, means 15 %/14 % for single/multiplayer).
	SinglePlayer CompletionStats
	Multiplayer  CompletionStats

	// ByGenre maps each genre to its average completion rate (paper:
	// Adventure highest at 19 %, Strategy low at 11 %).
	ByGenre []GenreCompletion
}

// CompletionStats summarizes per-game average completion rates.
type CompletionStats struct {
	ModePct   float64
	MedianPct float64
	MeanPct   float64
	Games     int
}

// GenreCompletion is one genre's completion summary.
type GenreCompletion struct {
	Genre      string
	AvgPct     float64
	AvgOffered float64
	Games      int
}

// Section9Achievements reproduces the §9 analysis over the catalog and
// the cumulative per-game playtimes found in the snapshot.
func Section9Achievements(s *dataset.Snapshot) AchievementsResult {
	// Cumulative playtime per game.
	playtime := map[uint32]float64{}
	for i := range s.Users {
		for _, og := range s.Users[i].Games {
			playtime[og.AppID] += float64(og.TotalMinutes)
		}
	}

	var offered, play []float64
	var offeredNonzero []float64
	var spCompletion, mpCompletion []float64
	genrePct := map[string][]float64{}
	genreOffered := map[string][]float64{}
	res := AchievementsResult{}
	for i := range s.Games {
		g := &s.Games[i]
		if g.Type != "game" {
			continue
		}
		n := len(g.Achievements)
		offered = append(offered, float64(n))
		play = append(play, playtime[g.AppID])
		if n > res.OfferedMax {
			res.OfferedMax = n
		}
		if n == 0 {
			continue
		}
		offeredNonzero = append(offeredNonzero, float64(n))
		var sum float64
		for _, a := range g.Achievements {
			sum += a.Percent
		}
		avg := sum / float64(n)
		if g.Multiplayer {
			mpCompletion = append(mpCompletion, avg)
		} else {
			spCompletion = append(spCompletion, avg)
		}
		for _, genre := range g.Genres {
			genrePct[genre] = append(genrePct[genre], avg)
			genreOffered[genre] = append(genreOffered[genre], float64(n))
		}
	}
	res.GamesTotal = len(offered)
	res.OfferedMode = stats.Mode(offeredNonzero)
	res.OfferedMedian = stats.Median(offeredNonzero)
	res.OfferedMean = stats.Mean(offeredNonzero)

	res.RhoAll = stats.Spearman(offered, play)
	res.Rho1to90 = stats.SpearmanSubset(offered, play, 1, 90)
	res.RhoOver90 = stats.SpearmanSubset(offered, play, 91, 1e18)

	res.SinglePlayer = summarizeCompletion(spCompletion)
	res.Multiplayer = summarizeCompletion(mpCompletion)

	for genre, pcts := range genrePct {
		res.ByGenre = append(res.ByGenre, GenreCompletion{
			Genre:      genre,
			AvgPct:     stats.Mean(pcts),
			AvgOffered: stats.Mean(genreOffered[genre]),
			Games:      len(pcts),
		})
	}
	sort.Slice(res.ByGenre, func(a, b int) bool { return res.ByGenre[a].AvgPct > res.ByGenre[b].AvgPct })
	return res
}

func summarizeCompletion(pcts []float64) CompletionStats {
	if len(pcts) == 0 {
		return CompletionStats{}
	}
	// Mode over integer-rounded percentages, as the paper reports
	// ("the mode of the average completion rate was 5 %").
	rounded := make([]float64, len(pcts))
	for i, p := range pcts {
		rounded[i] = float64(int(p + 0.5))
	}
	return CompletionStats{
		ModePct:   stats.Mode(rounded),
		MedianPct: stats.Median(pcts),
		MeanPct:   stats.Mean(pcts),
		Games:     len(pcts),
	}
}

// HunterSeparation is the §9 future-work measurement the paper could not
// make with aggregate data: per-player completion rates, which separate
// achievement hunters (a mass near full completion) from ordinary players
// (mass near the global averages) and explain why the mean completion
// sits above the median.
type HunterSeparation struct {
	// Pairs is the number of (player, played game) observations.
	Pairs int
	// MedianPct / MeanPct of per-player completion, in percent.
	MedianPct float64
	MeanPct   float64
	// NearCompleteFrac is the share of observations with >= 90 %
	// completion.
	NearCompleteFrac float64
	// Hunter subset (players flagged as hunters by the generator).
	HunterPairs            int
	HunterMeanPct          float64
	HunterNearCompleteFrac float64
}

// HunterSeparationFromRates computes the separation from per-(player,
// game) completion fractions in [0, 1]; hunters is the subset belonging
// to achievement-hunter accounts.
func HunterSeparationFromRates(all, hunters []float64) HunterSeparation {
	res := HunterSeparation{Pairs: len(all), HunterPairs: len(hunters)}
	if len(all) == 0 {
		return res
	}
	res.MedianPct = stats.Median(all) * 100
	res.MeanPct = stats.Mean(all) * 100
	near := 0
	for _, r := range all {
		if r >= 0.9 {
			near++
		}
	}
	res.NearCompleteFrac = float64(near) / float64(len(all))
	if len(hunters) > 0 {
		res.HunterMeanPct = stats.Mean(hunters) * 100
		nearH := 0
		for _, r := range hunters {
			if r >= 0.9 {
				nearH++
			}
		}
		res.HunterNearCompleteFrac = float64(nearH) / float64(len(hunters))
	}
	return res
}
