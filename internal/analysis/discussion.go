package analysis

import (
	"sort"

	"steamstudy/internal/stats"
)

// AddictionResult carries the §10.2 discussion numbers: the paper argues
// its data could ground a cutoff for problematic play — "the top 1 % play
// more than 5 hours a day, have hundreds of games, or have spent
// thousands of dollars" — and notes that 1 % of the measured population
// is over a million gamers.
type AddictionResult struct {
	// Top1PctDailyHours is the 99th-percentile average daily playtime
	// (two-week playtime / 14) over all users.
	Top1PctDailyHours float64
	// Top1PctGames is the 99th-percentile library size among owners.
	Top1PctGames float64
	// Top1PctValueUSD is the 99th-percentile account value among owners.
	Top1PctValueUSD float64
	// Over5HoursDaily counts users averaging > 5 hours/day in the
	// two-week window, and its population share.
	Over5HoursDaily     int
	Over5HoursDailyFrac float64
	// PopulationAtOnePct is 1 % of the population size — the cohort the
	// paper says "should be studied in more depth".
	PopulationAtOnePct int
}

// Section10Addiction computes the §10.2 cutoffs.
func Section10Addiction(v *Vectors) AddictionResult {
	res := AddictionResult{PopulationAtOnePct: len(v.TwoWkH) / 100}
	daily := make([]float64, len(v.TwoWkH))
	for i, h := range v.TwoWkH {
		daily[i] = h / 14
		if daily[i] > 5 {
			res.Over5HoursDaily++
		}
	}
	res.Top1PctDailyHours = stats.Percentile(daily, 99)
	res.Top1PctGames = stats.Percentile(nonZero(v.Games), 99)
	res.Top1PctValueUSD = stats.Percentile(nonZero(v.ValueD), 99)
	if len(daily) > 0 {
		res.Over5HoursDailyFrac = float64(res.Over5HoursDaily) / float64(len(daily))
	}
	return res
}

// Anomaly is one account flagged by the §3.2-style validation pass, with
// the behaviour that triggered the flag. The paper's authors manually
// inspected all accounts with extreme behaviours to confirm they were
// real players rather than test accounts; this audit regenerates that
// inspection list from a snapshot.
type Anomaly struct {
	SteamID uint64
	Kind    string
	Detail  string
}

// AnomalyAudit carries the audit results grouped by kind.
type AnomalyAudit struct {
	// BigLibraryNeverPlayed: >= 500 games, zero playtime (paper found 29).
	BigLibraryNeverPlayed []Anomaly
	// NearMaxTwoWeek: 80-90 % of the 336-hour two-week bound (§6.1's
	// idlers, 0.01 % of users).
	NearMaxTwoWeek []Anomaly
	// CapPinnedFriends: exactly at a 250/300 friend cap (Fig 2's dips).
	CapPinnedFriends []Anomaly
	// TopCollectors: the largest libraries with their played fraction
	// (the paper's top collector owned 90.3 % of the catalog and had
	// played 34.5 % of it).
	TopCollectors []Anomaly
}

// Total returns the number of flagged accounts.
func (a AnomalyAudit) Total() int {
	return len(a.BigLibraryNeverPlayed) + len(a.NearMaxTwoWeek) +
		len(a.CapPinnedFriends) + len(a.TopCollectors)
}

// Section3Anomalies regenerates the §3.2 manual-validation list.
func Section3Anomalies(v *Vectors, topCollectors int) AnomalyAudit {
	var audit AnomalyAudit
	type collector struct {
		idx   int
		games int
	}
	var collectors []collector
	for i := range v.Snap.Users {
		u := &v.Snap.Users[i]
		games := len(u.Games)
		if games >= 500 && v.TotalH[i] == 0 {
			audit.BigLibraryNeverPlayed = append(audit.BigLibraryNeverPlayed, Anomaly{
				SteamID: u.SteamID, Kind: "big-library-never-played",
				Detail: itoa(games) + " games, zero minutes played",
			})
		}
		if h := v.TwoWkH[i]; h >= 0.8*336 && h <= 0.9*336 {
			audit.NearMaxTwoWeek = append(audit.NearMaxTwoWeek, Anomaly{
				SteamID: u.SteamID, Kind: "near-max-two-week",
				Detail: formatHours(h) + " of 336 possible hours",
			})
		}
		if d := int(v.Friends[i]); d == 250 || d == 300 {
			audit.CapPinnedFriends = append(audit.CapPinnedFriends, Anomaly{
				SteamID: u.SteamID, Kind: "cap-pinned-friends",
				Detail: itoa(d) + " friends (at a cap)",
			})
		}
		if games > 0 {
			collectors = append(collectors, collector{idx: i, games: games})
		}
	}
	sort.Slice(collectors, func(a, b int) bool { return collectors[a].games > collectors[b].games })
	if topCollectors > len(collectors) {
		topCollectors = len(collectors)
	}
	for _, c := range collectors[:topCollectors] {
		u := &v.Snap.Users[c.idx]
		played := 0
		for _, g := range u.Games {
			if g.TotalMinutes > 0 {
				played++
			}
		}
		pct := 0
		if c.games > 0 {
			pct = played * 100 / c.games
		}
		audit.TopCollectors = append(audit.TopCollectors, Anomaly{
			SteamID: u.SteamID, Kind: "top-collector",
			Detail: itoa(c.games) + " games owned, " + itoa(pct) + "% ever played",
		})
	}
	return audit
}

func formatHours(h float64) string {
	whole := int(h)
	return itoa(whole) + "h"
}
