package analysis

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"steamstudy/internal/dataset"
	"steamstudy/internal/heavytail"
	"steamstudy/internal/simworld"
	"steamstudy/internal/stats"
)

var (
	aOnce sync.Once
	aU    *simworld.Universe
	aSnap *dataset.Snapshot
	aVec  *Vectors
)

func fixtures(t *testing.T) (*simworld.Universe, *dataset.Snapshot, *Vectors) {
	t.Helper()
	aOnce.Do(func() {
		cfg := simworld.DefaultConfig(20000)
		cfg.CatalogSize = 1500
		aU = simworld.MustGenerate(cfg, 77)
		aSnap = dataset.FromUniverse(aU)
		aVec = Extract(aSnap)
	})
	return aU, aSnap, aVec
}

func TestExtractConsistency(t *testing.T) {
	u, s, v := fixtures(t)
	if len(v.Friends) != len(s.Users) {
		t.Fatal("vector length mismatch")
	}
	// Spot-check a few users against the universe.
	for _, i := range []int{0, 100, 5000, len(s.Users) - 1} {
		if v.TotalH[i] != float64(u.Users[i].TotalMinutes)/60 {
			t.Fatalf("user %d total playtime mismatch", i)
		}
		if v.ValueD[i] != float64(u.Users[i].ValueCents)/100 {
			t.Fatalf("user %d value mismatch", i)
		}
		if int(v.Games[i]) != len(u.Users[i].Library) {
			t.Fatalf("user %d games mismatch", i)
		}
	}
	if v.G.M() != len(u.Friendships) {
		t.Fatalf("graph edges %d, universe %d", v.G.M(), len(u.Friendships))
	}
}

func TestTable1Countries(t *testing.T) {
	_, s, _ := fixtures(t)
	tab := Table1Countries(s, 10)
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0].Country != "US" {
		t.Fatalf("top country %s, want US", tab.Rows[0].Country)
	}
	if math.Abs(tab.ReportFraction-0.107) > 0.02 {
		t.Fatalf("report fraction %v", tab.ReportFraction)
	}
	sum := tab.OtherPercent
	for _, r := range tab.Rows {
		sum += r.Percent
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("percentages sum to %v", sum)
	}
	// Ranks ascending, percents non-increasing.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Percent > tab.Rows[i-1].Percent {
			t.Fatal("rows not sorted by share")
		}
	}
}

func TestTable2GroupTypes(t *testing.T) {
	_, s, _ := fixtures(t)
	rows := Table2GroupTypes(s, 250)
	if len(rows) == 0 {
		t.Fatal("no group type rows")
	}
	total := 0
	pct := 0.0
	for _, r := range rows {
		total += r.Count
		pct += r.Percent
		if r.Type == "Unknown" {
			t.Fatalf("ground-truth snapshot has untyped groups")
		}
	}
	want := 250
	if len(s.Groups) < 500 {
		want = len(s.Groups) / 2
	}
	if total != want {
		t.Fatalf("counts sum to %d, want %d", total, want)
	}
	if math.Abs(pct-100) > 1e-6 {
		t.Fatalf("percentages sum to %v", pct)
	}
	// Table 2: Game Server groups dominate the top of the size order.
	if rows[0].Type != "Game Server" {
		t.Fatalf("largest-group type %s, want Game Server", rows[0].Type)
	}
}

func TestTable3Percentiles(t *testing.T) {
	_, _, v := fixtures(t)
	rows := Table3Percentiles(v)
	if len(rows) != 6 {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		if !(r.P50 <= r.P80 && r.P80 <= r.P90 && r.P90 <= r.P95 && r.P95 <= r.P99) {
			t.Fatalf("percentiles not monotone in row %q: %+v", r.Attribute, r)
		}
	}
	// The two-week row is over all users: its median must be zero.
	if rows[5].P50 != 0 || rows[5].P80 != 0 {
		t.Fatalf("two-week row should start at zero: %+v", rows[5])
	}
	// Friends row lands near the paper's values on the calibrated universe.
	if math.Abs(rows[0].P50-4) > 1 {
		t.Fatalf("friends P50 = %v", rows[0].P50)
	}
}

func TestTable4Classification(t *testing.T) {
	_, _, v := fixtures(t)
	inputs := StandardTable4Inputs(v, nil, []int{2011, 2012, 2013})
	rows := Table4Classification(inputs, 0)
	if len(rows) != 13 {
		t.Fatalf("row count %d, want 13", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("row %q failed: %s", r.Distribution, r.Err)
		}
		// Every studied distribution must pass the heavy-tail gate (the
		// paper observes no exponentially bounded distributions). The
		// group-size row is exempt at this test scale: with only a few
		// hundred groups the Vuong test lacks power (R is strongly
		// positive but p > 0.05); the full-scale run in EXPERIMENTS.md
		// passes the gate.
		if r.Class == heavytail.NotHeavyTailed && r.Distribution != "Group size" {
			t.Errorf("row %q classified not heavy-tailed (comparisons %+v)", r.Distribution, r.Comparisons)
		}
		if r.Alpha <= 1 {
			t.Errorf("row %q alpha %v", r.Distribution, r.Alpha)
		}
	}
}

func TestTable4ClassificationWorkerIndependent(t *testing.T) {
	// The classification pipeline has no randomness, so the whole table —
	// every comparison statistic, exponent and label — must be identical
	// for any worker count, including nested pool parallelism.
	_, _, v := fixtures(t)
	inputs := StandardTable4Inputs(v, nil, []int{2012, 2013})
	ref := Table4Classification(inputs, 1)
	for _, w := range []int{2, 8, 0} {
		rows := Table4Classification(inputs, w)
		if !reflect.DeepEqual(rows, ref) {
			t.Fatalf("workers=%d: classification rows differ from serial", w)
		}
	}
}

func TestFigure1Evolution(t *testing.T) {
	_, _, v := fixtures(t)
	pts := Figure1Evolution(v)
	if len(pts) < 50 {
		t.Fatalf("only %d monthly points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Users < pts[i-1].Users || pts[i].Friendships < pts[i-1].Friendships {
			t.Fatal("evolution not monotone")
		}
	}
	last := pts[len(pts)-1]
	if last.Users != len(v.Snap.Users) {
		t.Fatalf("final user count %d, want %d", last.Users, len(v.Snap.Users))
	}
	// Friendships from 2008 on are fewer than the full edge count
	// (§4.1: the graph does not reach the crawl total).
	if last.Friendships > v.G.M() {
		t.Fatal("evolution counted more edges than exist")
	}
}

func TestFigure2Degrees(t *testing.T) {
	_, _, v := fixtures(t)
	series := Figure2DegreeDistributions(v, []int{2010, 2012})
	if len(series) != 3 {
		t.Fatalf("series count %d", len(series))
	}
	size := func(h map[int]int) int {
		n := 0
		for _, c := range h {
			n += c
		}
		return n
	}
	// Later cumulative distributions cover at least as many users.
	if size(series[0].Hist) > size(series[1].Hist) {
		t.Fatal("2010 cumulative larger than 2012")
	}
	if size(series[2].Hist) < size(series[1].Hist) {
		t.Fatal("entire network smaller than 2012 cumulative")
	}
}

func TestFigure3GroupGames(t *testing.T) {
	_, s, _ := fixtures(t)
	res := Figure3GroupGameDiversity(s, 20)
	if res.GroupsConsidered == 0 {
		t.Skip("no groups above the membership floor at this scale")
	}
	total := 0
	for _, p := range res.Histogram {
		total += p.Groups
	}
	if total != res.GroupsConsidered {
		t.Fatalf("histogram covers %d of %d groups", total, res.GroupsConsidered)
	}
	if res.FocusedFraction < 0 || res.FocusedFraction > 1 {
		t.Fatalf("focused fraction %v", res.FocusedFraction)
	}
}

func TestFigure4Ownership(t *testing.T) {
	_, _, v := fixtures(t)
	res := Figure4Ownership(v)
	if res.OwnedP80 < res.PlayedP80 {
		t.Fatalf("owned P80 (%v) below played P80 (%v)", res.OwnedP80, res.PlayedP80)
	}
	if math.Abs(res.OwnedP80-10) > 3 {
		t.Fatalf("owned P80 = %v, want ~10", res.OwnedP80)
	}
	owners := 0
	for _, c := range res.OwnedHist {
		owners += c
	}
	players := 0
	for _, c := range res.PlayedHist {
		players += c
	}
	if players > owners {
		t.Fatal("more players than owners")
	}
}

func TestFigure5GenreOwnership(t *testing.T) {
	_, s, _ := fixtures(t)
	rows := Figure5GenreOwnership(s)
	if len(rows) == 0 {
		t.Fatal("no genre rows")
	}
	if rows[0].Genre != "Action" || !rows[0].OwnedShareTop {
		t.Fatalf("top owned genre %q, want Action", rows[0].Genre)
	}
	for _, r := range rows {
		if r.Unplayed > r.Owned {
			t.Fatalf("genre %s has more unplayed than owned", r.Genre)
		}
		if r.UnplayedFrac < 0 || r.UnplayedFrac > 1 {
			t.Fatalf("genre %s unplayed fraction %v", r.Genre, r.UnplayedFrac)
		}
	}
}

func TestFigure6PlaytimeCDF(t *testing.T) {
	_, _, v := fixtures(t)
	res := Figure6PlaytimeCDF(v)
	if math.Abs(res.ZeroTwoWeekFrac-0.806) > 0.03 {
		t.Fatalf("zero two-week fraction %v", res.ZeroTwoWeekFrac)
	}
	if math.Abs(res.Top20TotalShare-0.824) > 0.06 {
		t.Fatalf("top-20%% total share %v", res.Top20TotalShare)
	}
	if res.Top10TwoWeekShare < 0.85 {
		t.Fatalf("top-10%% two-week share %v", res.Top10TwoWeekShare)
	}
	if res.TotalCDF[len(res.TotalCDF)-1].P != 1 {
		t.Fatal("total CDF does not reach 1")
	}
}

func TestFigure7TwoWeek(t *testing.T) {
	_, _, v := fixtures(t)
	res := Figure7NonZeroTwoWeek(v)
	if math.Abs(res.P80-32.05) > 4 {
		t.Fatalf("nonzero two-week P80 = %v, want ~32.05", res.P80)
	}
	if res.Max > 336 {
		t.Fatalf("two-week max %v exceeds bound", res.Max)
	}
	if len(res.Bins) == 0 {
		t.Fatal("no bins")
	}
}

func TestFigure8MarketValue(t *testing.T) {
	_, _, v := fixtures(t)
	res := Figure8MarketValue(v)
	if res.P80 < 100 || res.P80 > 260 {
		t.Fatalf("value P80 = %v, want near 150.88", res.P80)
	}
	if res.Top20ValueShare < 0.5 || res.Top20ValueShare > 0.95 {
		t.Fatalf("top-20%% value share %v", res.Top20ValueShare)
	}
}

func TestFigure9GenreExpenditure(t *testing.T) {
	_, s, _ := fixtures(t)
	rows := Figure9GenreExpenditure(s)
	if rows[0].Genre != "Action" {
		t.Fatalf("top playtime genre %q, want Action", rows[0].Genre)
	}
	// Action is over-represented relative to its catalog share (§6.2).
	if rows[0].PlaytimeShare < 0.25 {
		t.Fatalf("Action playtime share %v too low", rows[0].PlaytimeShare)
	}
	var pShare float64
	for _, r := range rows {
		pShare += r.PlaytimeShare
	}
	if math.Abs(pShare-1) > 1e-9 {
		t.Fatalf("playtime shares sum to %v", pShare)
	}
}

func TestFigure10Multiplayer(t *testing.T) {
	_, s, _ := fixtures(t)
	res := Figure10MultiplayerShare(s)
	if math.Abs(res.CatalogShare-0.487) > 0.04 {
		t.Fatalf("catalog share %v", res.CatalogShare)
	}
	if math.Abs(res.TotalShare-0.577) > 0.09 {
		t.Fatalf("total share %v", res.TotalShare)
	}
	if math.Abs(res.TwoWeekShare-0.677) > 0.09 {
		t.Fatalf("two-week share %v", res.TwoWeekShare)
	}
	if res.TwoWeekShare <= res.TotalShare {
		t.Fatal("two-week share should exceed total share")
	}
}

func TestSection7Correlations(t *testing.T) {
	_, _, v := fixtures(t)
	rows := Section7Correlations(v)
	if len(rows) != 5 {
		t.Fatalf("row count %d", len(rows))
	}
	byPair := map[string]float64{}
	for _, r := range rows {
		byPair[r.Pair] = r.Rho
		if r.Strength == "" {
			t.Fatal("missing strength label")
		}
	}
	if rho := byPair["games owned vs friends"]; math.Abs(rho-0.34) > 0.12 {
		t.Fatalf("games-friends rho %v", rho)
	}
	if rho := byPair["friends vs two-week playtime"]; math.Abs(rho) > 0.19 {
		t.Fatalf("friends-two-week rho %v should be very weak", rho)
	}
}

func TestSection7CachedRanksBitIdentical(t *testing.T) {
	// Regression for the rank-caching optimization: the ρ values must be
	// exactly what the old per-pair stats.Spearman path returned.
	_, _, v := fixtures(t)
	var gm, fr, tot, tw []float64
	for i := range v.Games {
		if v.Games[i] == 0 {
			continue
		}
		gm = append(gm, v.Games[i])
		fr = append(fr, v.Friends[i])
		tot = append(tot, v.TotalH[i])
		tw = append(tw, v.TwoWkH[i])
	}
	want := map[string]float64{
		"games owned vs friends":           stats.Spearman(gm, fr),
		"games owned vs two-week playtime": stats.Spearman(gm, tw),
		"games owned vs total playtime":    stats.Spearman(gm, tot),
		"friends vs two-week playtime":     stats.Spearman(fr, tw),
		"friends vs total playtime":        stats.Spearman(fr, tot),
	}
	for _, r := range Section7Correlations(v) {
		if w, ok := want[r.Pair]; !ok || r.Rho != w {
			t.Fatalf("pair %q: cached-rank rho %v != direct Spearman %v", r.Pair, r.Rho, w)
		}
	}
}

func TestFigure11Homophily(t *testing.T) {
	_, _, v := fixtures(t)
	rows := Figure11Homophily(v)
	if len(rows) != 4 {
		t.Fatalf("row count %d", len(rows))
	}
	if rows[0].Attribute != "account market value" {
		t.Fatal("first homophily row should be market value")
	}
	for _, r := range rows {
		if r.Rho < 0.25 {
			t.Errorf("homophily %q = %v, want at least moderate", r.Attribute, r.Rho)
		}
		if r.Pairs == 0 {
			t.Errorf("homophily %q has no pairs", r.Attribute)
		}
	}
	own, nbr := HomophilyScatter(v, 500)
	if len(own) != 500 || len(nbr) != 500 {
		t.Fatalf("scatter subsample size %d/%d", len(own), len(nbr))
	}
}

func TestSection4Locality(t *testing.T) {
	_, _, v := fixtures(t)
	res := Section4Locality(v)
	if res.CountryPairs == 0 {
		t.Fatal("no reported-country pairs")
	}
	if math.Abs(res.InternationalFrac-0.3034) > 0.12 {
		t.Fatalf("international fraction %v", res.InternationalFrac)
	}
	if res.CrossCityFrac < 0.6 {
		t.Fatalf("cross-city fraction %v", res.CrossCityFrac)
	}
}

func TestSection8Evolution(t *testing.T) {
	// A dedicated universe with catalog headroom: the shared fixture's
	// top collector already owns most of its small catalog, leaving no
	// room for the §8 tail growth.
	cfg := simworld.DefaultConfig(8000)
	cfg.CatalogSize = 4000
	u := simworld.MustGenerate(cfg, 81)
	v := Extract(dataset.FromUniverse(u))
	second := Extract(dataset.FromUniverse(simworld.Evolve(u)))
	cmp := Section8Evolution(v, second)
	if cmp.TailGamesGrowth <= 1 {
		t.Fatalf("tail games growth %v", cmp.TailGamesGrowth)
	}
	if cmp.TailValueGrowth <= 1 {
		t.Fatalf("tail value growth %v", cmp.TailValueGrowth)
	}
	// §8's headline: the tail grows much faster than the 80th percentile.
	if cmp.TailGamesGrowth < cmp.P80GamesGrowth {
		t.Fatalf("tail (%v) did not outgrow the 80th percentile (%v)",
			cmp.TailGamesGrowth, cmp.P80GamesGrowth)
	}
}

func TestFigure12WeekMatrix(t *testing.T) {
	u, _, _ := fixtures(t)
	sample := u.SampleWeekUsers(0.01)
	res := Figure12WeekMatrix(sample, u.WeekSeries)
	if res.Users == 0 {
		t.Fatal("no active users in the week sample")
	}
	// Day-one ordering is monotone.
	day1 := res.Minutes[0]
	for i := 1; i < len(day1); i++ {
		if day1[i] < day1[i-1] {
			t.Fatal("day-one column not sorted")
		}
	}
	// The Fig 12 gradient: heavy day-one players stay heavier.
	if res.DayOneRankPersistence < 0.2 {
		t.Fatalf("day-one persistence %v, want a visible gradient", res.DayOneRankPersistence)
	}
	// And the paper's other finding: users idle on day one do play later.
	if res.SwitchedOnFrac == 0 {
		t.Fatal("no day-one-idle users switched on during the week")
	}
}

func TestSection9Achievements(t *testing.T) {
	_, s, _ := fixtures(t)
	res := Section9Achievements(s)
	if res.OfferedMax > 1629 {
		t.Fatalf("offered max %d beyond the paper's bound", res.OfferedMax)
	}
	if res.OfferedMedian < 15 || res.OfferedMedian > 35 {
		t.Fatalf("offered median %v, want near 24", res.OfferedMedian)
	}
	if res.OfferedMean < res.OfferedMedian {
		t.Fatalf("offered mean %v below median %v (right skew expected)", res.OfferedMean, res.OfferedMedian)
	}
	// §9 correlation structure: moderate inside 1-90, weak overall,
	// none beyond 90.
	if res.Rho1to90 < 0.3 {
		t.Fatalf("rho(1-90) = %v, want moderate", res.Rho1to90)
	}
	if res.Rho1to90 <= res.RhoAll-0.05 {
		t.Fatalf("rho(1-90)=%v should exceed overall rho=%v", res.Rho1to90, res.RhoAll)
	}
	if math.Abs(res.RhoOver90) > 0.35 {
		t.Fatalf("rho(>90) = %v, want near zero", res.RhoOver90)
	}
	// Mean completion above median (achievement hunters skew).
	if res.SinglePlayer.MeanPct <= res.SinglePlayer.MedianPct {
		t.Fatalf("single-player mean %v not above median %v",
			res.SinglePlayer.MeanPct, res.SinglePlayer.MedianPct)
	}
	// Adventure tops the genre completion ordering; Strategy sits low.
	var advPct, strPct float64
	for _, g := range res.ByGenre {
		switch g.Genre {
		case "Adventure":
			advPct = g.AvgPct
		case "Strategy":
			strPct = g.AvgPct
		}
	}
	if advPct <= strPct {
		t.Fatalf("Adventure completion (%v) not above Strategy (%v)", advPct, strPct)
	}
}

func TestSection10Addiction(t *testing.T) {
	_, _, v := fixtures(t)
	res := Section10Addiction(v)
	// §10.2: the top 1% average more than ~5 hours/day in the fortnight
	// window (on the calibrated universe the 99th percentile of daily
	// hours sits near the paper's cutoff).
	if res.Top1PctDailyHours < 3 || res.Top1PctDailyHours > 8 {
		t.Fatalf("top-1%% daily hours = %v, want near 5", res.Top1PctDailyHours)
	}
	if res.Top1PctGames < 80 {
		t.Fatalf("top-1%% games = %v, want hundreds-ish", res.Top1PctGames)
	}
	if res.Top1PctValueUSD < 1000 {
		t.Fatalf("top-1%% value = %v, want thousands", res.Top1PctValueUSD)
	}
	if res.PopulationAtOnePct != len(v.TwoWkH)/100 {
		t.Fatal("population cohort size wrong")
	}
	if res.Over5HoursDailyFrac <= 0 || res.Over5HoursDailyFrac > 0.05 {
		t.Fatalf("over-5h/day fraction = %v", res.Over5HoursDailyFrac)
	}
}

func TestSection3Anomalies(t *testing.T) {
	_, _, v := fixtures(t)
	audit := Section3Anomalies(v, 3)
	if len(audit.TopCollectors) != 3 {
		t.Fatalf("top collectors = %d, want 3", len(audit.TopCollectors))
	}
	// Collectors are ordered by library size.
	if audit.TopCollectors[0].Detail == "" || audit.TopCollectors[0].Kind != "top-collector" {
		t.Fatalf("collector record malformed: %+v", audit.TopCollectors[0])
	}
	// The calibrated universe plants idlers and unplayed big libraries.
	if len(audit.NearMaxTwoWeek) == 0 {
		t.Error("no near-max idlers flagged (IdlerFrac plants them)")
	}
	if audit.Total() != len(audit.BigLibraryNeverPlayed)+len(audit.NearMaxTwoWeek)+
		len(audit.CapPinnedFriends)+len(audit.TopCollectors) {
		t.Fatal("Total() inconsistent")
	}
	for _, a := range audit.NearMaxTwoWeek {
		if a.SteamID == 0 {
			t.Fatal("anomaly without a SteamID")
		}
	}
}

func TestSnowballSampleAndBias(t *testing.T) {
	_, s, _ := fixtures(t)
	snow := SnowballSample(s, 10, 0)
	if len(snow.Users) == 0 || len(snow.Users) >= len(s.Users) {
		t.Fatalf("snowball reached %d of %d users", len(snow.Users), len(s.Users))
	}
	// Every reached user must have friends or be a seed; the bulk of the
	// population (the isolated ~71%) is invisible.
	bias := SamplingBias(s, snow)
	if bias.SnowballMeanFriends <= bias.ExhaustiveMeanFriends {
		t.Fatalf("snowball mean friends %.2f not above exhaustive %.2f — the §2.2 bias is missing",
			bias.SnowballMeanFriends, bias.ExhaustiveMeanFriends)
	}
	if bias.ZeroFriendFracExhaustive < 0.5 {
		t.Fatalf("zero-friend fraction %v unexpectedly low", bias.ZeroFriendFracExhaustive)
	}
	if bias.Coverage >= 1 || bias.Coverage <= 0 {
		t.Fatalf("coverage %v", bias.Coverage)
	}
	// maxUsers bound honored.
	bounded := SnowballSample(s, 10, 50)
	if len(bounded.Users) != 50 {
		t.Fatalf("bounded snowball returned %d users", len(bounded.Users))
	}
}

func TestHunterSeparationFromRates(t *testing.T) {
	all := []float64{0, 0, 0.1, 0.2, 0.95, 1.0}
	hunters := []float64{0.95, 1.0}
	res := HunterSeparationFromRates(all, hunters)
	if res.Pairs != 6 || res.HunterPairs != 2 {
		t.Fatalf("counts: %+v", res)
	}
	if res.NearCompleteFrac != 2.0/6 || res.HunterNearCompleteFrac != 1.0 {
		t.Fatalf("near-complete: %+v", res)
	}
	if res.MeanPct <= res.MedianPct {
		t.Fatalf("mean %v should exceed median %v on this skewed input", res.MeanPct, res.MedianPct)
	}
	empty := HunterSeparationFromRates(nil, nil)
	if empty.Pairs != 0 || empty.MeanPct != 0 {
		t.Fatalf("empty input: %+v", empty)
	}
}
