// Package analysis reproduces every table and figure of the paper's
// evaluation from a dataset.Snapshot: Tables 1-4, Figures 1-12, the §7
// correlation study, the §8 two-snapshot evolution, and the §9
// achievements study. Each experiment is a pure function from snapshot(s)
// to a typed result that the report package renders and the benchmarks
// regenerate.
package analysis

import (
	"steamstudy/internal/dataset"
	"steamstudy/internal/graph"
)

// Vectors caches the per-user attribute columns extracted from a
// snapshot, shared by several experiments.
type Vectors struct {
	Snap *dataset.Snapshot
	// Per-user columns, aligned with Snap.Users.
	Friends []float64
	Games   []float64
	Played  []float64
	Groups  []float64
	TotalH  []float64 // hours
	TwoWkH  []float64 // hours
	ValueD  []float64 // dollars

	// G is the friendship graph over user indices.
	G *graph.Graph
}

// Extract builds the attribute columns and the friendship graph.
func Extract(s *dataset.Snapshot) *Vectors {
	n := len(s.Users)
	v := &Vectors{
		Snap:    s,
		Friends: make([]float64, n),
		Games:   make([]float64, n),
		Played:  make([]float64, n),
		Groups:  make([]float64, n),
		TotalH:  make([]float64, n),
		TwoWkH:  make([]float64, n),
		ValueD:  make([]float64, n),
	}
	price := make(map[uint32]int64, len(s.Games))
	for i := range s.Games {
		price[s.Games[i].AppID] = s.Games[i].PriceCents
	}
	for i := range s.Users {
		u := &s.Users[i]
		v.Games[i] = float64(len(u.Games))
		v.Groups[i] = float64(len(u.Groups))
		var tot, tw, val int64
		played := 0
		for _, g := range u.Games {
			tot += g.TotalMinutes
			tw += int64(g.TwoWeekMinutes)
			val += price[g.AppID]
			if g.TotalMinutes > 0 {
				played++
			}
		}
		v.Played[i] = float64(played)
		v.TotalH[i] = float64(tot) / 60
		v.TwoWkH[i] = float64(tw) / 60
		v.ValueD[i] = float64(val) / 100
	}
	edges := s.FriendshipEdges()
	gedges := make([]graph.Edge, len(edges))
	for i, e := range edges {
		gedges[i] = graph.Edge{A: e.A, B: e.B, Since: e.Since}
	}
	v.G = graph.Build(n, gedges)
	deg := v.G.Degrees()
	for i, d := range deg {
		v.Friends[i] = float64(d)
	}
	return v
}

// nonZero filters a column to its positive entries.
func nonZero(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}
