package analysis

import (
	"sort"

	"steamstudy/internal/dataset"
	"steamstudy/internal/stats"
)

// SnowballSample simulates a Becker/Blackburn-style crawl over a snapshot
// (§2.2): breadth-first traversal of friend lists from seed accounts.
// Isolated accounts and components not reachable from the seeds are never
// found. The crawler package implements the same traversal over HTTP
// (crawler.Snowball); this in-memory version lets the bias experiment run
// on any snapshot without a server.
func SnowballSample(s *dataset.Snapshot, seedCount, maxUsers int) *dataset.Snapshot {
	if seedCount < 1 {
		seedCount = 1
	}
	// Deterministic seeds: the highest-degree accounts, which is how
	// crawls were seeded in practice (well-known public profiles).
	type cand struct {
		idx int
		deg int
	}
	cands := make([]cand, len(s.Users))
	for i := range s.Users {
		cands[i] = cand{idx: i, deg: len(s.Users[i].Friends)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].deg != cands[b].deg {
			return cands[a].deg > cands[b].deg
		}
		return s.Users[cands[a].idx].SteamID < s.Users[cands[b].idx].SteamID
	})
	idx := s.UserIndex()
	visited := make(map[int32]bool)
	var queue []int32
	for i := 0; i < seedCount && i < len(cands); i++ {
		v := int32(cands[i].idx)
		if !visited[v] {
			visited[v] = true
			queue = append(queue, v)
		}
	}
	out := &dataset.Snapshot{CollectedAt: s.CollectedAt, Games: s.Games}
	for qi := 0; qi < len(queue); qi++ {
		if maxUsers > 0 && len(out.Users) >= maxUsers {
			break
		}
		u := &s.Users[queue[qi]]
		out.Users = append(out.Users, *u)
		for _, f := range u.Friends {
			if j, ok := idx[f.SteamID]; ok && !visited[j] {
				visited[j] = true
				queue = append(queue, j)
			}
		}
	}
	return out
}

// SamplingBiasResult quantifies the §2.2 claim: a snowball crawl misses
// low-degree and isolated users, inflating connectivity statistics, which
// the paper's exhaustive ID sweep avoids.
type SamplingBiasResult struct {
	ExhaustiveUsers int
	SnowballUsers   int
	// Coverage is the fraction of all accounts the snowball reached.
	Coverage float64
	// Mean and median friend counts under each methodology.
	ExhaustiveMeanFriends   float64
	SnowballMeanFriends     float64
	ExhaustiveMedianFriends float64
	SnowballMedianFriends   float64
	// ZeroFriendFracExhaustive is the share of accounts with no friends —
	// invisible to a snowball crawl by construction.
	ZeroFriendFracExhaustive float64
}

// SamplingBias compares an exhaustive snapshot with a snowball sample of
// the same universe.
func SamplingBias(exhaustive, snowball *dataset.Snapshot) SamplingBiasResult {
	degs := func(s *dataset.Snapshot) []float64 {
		out := make([]float64, len(s.Users))
		for i := range s.Users {
			out[i] = float64(len(s.Users[i].Friends))
		}
		return out
	}
	ex := degs(exhaustive)
	sb := degs(snowball)
	res := SamplingBiasResult{
		ExhaustiveUsers:          len(ex),
		SnowballUsers:            len(sb),
		ExhaustiveMeanFriends:    stats.Mean(ex),
		SnowballMeanFriends:      stats.Mean(sb),
		ExhaustiveMedianFriends:  stats.Median(ex),
		SnowballMedianFriends:    stats.Median(sb),
		ZeroFriendFracExhaustive: stats.ZeroFraction(ex),
	}
	if len(ex) > 0 {
		res.Coverage = float64(len(sb)) / float64(len(ex))
	}
	return res
}
