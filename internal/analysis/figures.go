package analysis

import (
	"sort"
	"strconv"
	"time"

	"steamstudy/internal/dataset"
	"steamstudy/internal/graph"
	"steamstudy/internal/stats"
)

func endOfYear(y int) int64 {
	return time.Date(y+1, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
}

func itoa(v int) string { return strconv.Itoa(v) }

// Figure1Evolution reproduces Fig 1: monthly cumulative users and
// friendships from September 2008 (when Steam began recording friendship
// timestamps) to the crawl end.
func Figure1Evolution(v *Vectors) []graph.EvolutionPoint {
	created := make([]int64, len(v.Snap.Users))
	for i := range v.Snap.Users {
		created[i] = v.Snap.Users[i].Created
	}
	from := time.Date(2008, 9, 1, 0, 0, 0, 0, time.UTC).Unix()
	return v.G.Evolution(created, from, v.Snap.CollectedAt)
}

// DegreeSeries is one Fig 2 curve: the count of users per friend count.
type DegreeSeries struct {
	Label string
	// Hist maps friend count -> number of users (nonzero only).
	Hist map[int]int
}

// Figure2DegreeDistributions reproduces Fig 2: the cumulative friend
// distribution through each year plus the full network.
func Figure2DegreeDistributions(v *Vectors, years []int) []DegreeSeries {
	var out []DegreeSeries
	for _, y := range years {
		deg := v.G.DegreesAt(endOfYear(y))
		out = append(out, DegreeSeries{
			Label: "through " + itoa(y),
			Hist:  intHist(deg),
		})
	}
	out = append(out, DegreeSeries{Label: "entire network", Hist: intHist(v.G.Degrees())})
	return out
}

func intHist(deg []int) map[int]int {
	h := map[int]int{}
	for _, d := range deg {
		if d > 0 {
			h[d]++
		}
	}
	return h
}

// CapDipStats quantifies the Fig 2 anomaly at the friend caps: the count
// of users just below 250 versus those above it.
type CapDipStats struct {
	At240to250 int
	Above250   int
	Above300   int
}

// Figure2CapDips measures the friend-cap dips.
func Figure2CapDips(v *Vectors) CapDipStats {
	var s CapDipStats
	for _, d := range v.G.Degrees() {
		if d >= 240 && d <= 250 {
			s.At240to250++
		}
		if d > 250 {
			s.Above250++
		}
		if d > 300 {
			s.Above300++
		}
	}
	return s
}

// GroupGamesPoint is one Fig 3 histogram cell: the number of groups whose
// members play a given number of distinct games.
type GroupGamesPoint struct {
	DistinctGames int
	Groups        int
}

// Figure3Result carries the Fig 3 distribution plus the focused-group
// statistic the paper quotes (groups whose members devote >= 90 % of
// playtime to one game).
type Figure3Result struct {
	GroupsConsidered int
	Histogram        []GroupGamesPoint
	// FocusedGroups counts groups with >= 90 % of member playtime on a
	// single game (the paper reports 4.97 %).
	FocusedGroups   int
	FocusedFraction float64
}

// Figure3GroupGameDiversity reproduces Fig 3 over groups with at least
// minMembers members (the paper used 100).
func Figure3GroupGameDiversity(s *dataset.Snapshot, minMembers int) Figure3Result {
	idx := s.UserIndex()
	res := Figure3Result{}
	hist := map[int]int{}
	for gi := range s.Groups {
		g := &s.Groups[gi]
		if len(g.Members) < minMembers {
			continue
		}
		res.GroupsConsidered++
		distinct := map[uint32]int64{}
		var total int64
		for _, m := range g.Members {
			ui, ok := idx[m]
			if !ok {
				continue
			}
			for _, og := range s.Users[ui].Games {
				if og.TotalMinutes > 0 {
					distinct[og.AppID] += og.TotalMinutes
					total += og.TotalMinutes
				}
			}
		}
		hist[len(distinct)]++
		var top int64
		for _, m := range distinct {
			if m > top {
				top = m
			}
		}
		if total > 0 && float64(top)/float64(total) >= 0.90 {
			res.FocusedGroups++
		}
	}
	for k, n := range hist {
		res.Histogram = append(res.Histogram, GroupGamesPoint{DistinctGames: k, Groups: n})
	}
	sort.Slice(res.Histogram, func(a, b int) bool {
		return res.Histogram[a].DistinctGames < res.Histogram[b].DistinctGames
	})
	if res.GroupsConsidered > 0 {
		res.FocusedFraction = float64(res.FocusedGroups) / float64(res.GroupsConsidered)
	}
	return res
}

// OwnershipResult carries Fig 4: the owned and played distributions with
// their 80th percentiles, plus the collector uptick band count.
type OwnershipResult struct {
	OwnedHist  map[int]int
	PlayedHist map[int]int
	OwnedP80   float64
	PlayedP80  float64
	// UptickOwners counts users owning 1268-1290 games (the §5 anomaly).
	UptickOwners int
	// NeverPlayedBigLibraries counts users owning >= 500 games with zero
	// playtime (the paper found 29).
	NeverPlayedBigLibraries int
}

// Figure4Ownership reproduces Fig 4.
func Figure4Ownership(v *Vectors) OwnershipResult {
	res := OwnershipResult{
		OwnedHist:  map[int]int{},
		PlayedHist: map[int]int{},
	}
	for i := range v.Games {
		owned := int(v.Games[i])
		if owned > 0 {
			res.OwnedHist[owned]++
			if owned >= 1268 && owned <= 1290 {
				res.UptickOwners++
			}
			if owned >= 500 && v.TotalH[i] == 0 {
				res.NeverPlayedBigLibraries++
			}
		}
		if played := int(v.Played[i]); played > 0 {
			res.PlayedHist[played]++
		}
	}
	res.OwnedP80 = stats.Percentile(nonZero(v.Games), 80)
	res.PlayedP80 = stats.Percentile(nonZero(v.Played), 80)
	return res
}

// GenreOwnershipRow is one Fig 5 bar pair.
type GenreOwnershipRow struct {
	Genre         string
	Owned         int
	Unplayed      int
	UnplayedFrac  float64
	CatalogShare  float64 // fraction of catalog products with the label
	OwnedShareTop bool    // set on the most-owned genre
}

// Figure5GenreOwnership reproduces Fig 5: copies owned and owned-but-
// unplayed per genre.
func Figure5GenreOwnership(s *dataset.Snapshot) []GenreOwnershipRow {
	genreOf := map[uint32][]string{}
	catalogCount := map[string]int{}
	for i := range s.Games {
		genreOf[s.Games[i].AppID] = s.Games[i].Genres
		for _, g := range s.Games[i].Genres {
			catalogCount[g]++
		}
	}
	owned := map[string]int{}
	unplayed := map[string]int{}
	for i := range s.Users {
		for _, og := range s.Users[i].Games {
			for _, g := range genreOf[og.AppID] {
				owned[g]++
				if og.TotalMinutes == 0 {
					unplayed[g]++
				}
			}
		}
	}
	var rows []GenreOwnershipRow
	for g, n := range owned {
		row := GenreOwnershipRow{Genre: g, Owned: n, Unplayed: unplayed[g]}
		if n > 0 {
			row.UnplayedFrac = float64(unplayed[g]) / float64(n)
		}
		if len(s.Games) > 0 {
			row.CatalogShare = float64(catalogCount[g]) / float64(len(s.Games))
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].Owned > rows[b].Owned })
	if len(rows) > 0 {
		rows[0].OwnedShareTop = true
	}
	return rows
}

// PlaytimeCDFResult carries Fig 6: the CDFs plus the Pareto-share
// statistics the paper quotes.
type PlaytimeCDFResult struct {
	TotalCDF   []stats.CDFPoint
	TwoWeekCDF []stats.CDFPoint
	// Top20TotalShare: the top 20 % of players hold this share of all
	// playtime (paper: 82.4 %).
	Top20TotalShare float64
	// Top10TwoWeekShare: the top 10 % of users hold this share of
	// two-week playtime (paper: 93.0 %).
	Top10TwoWeekShare float64
	// ZeroTwoWeekFrac: fraction of users with zero two-week playtime
	// (paper: over 80 %).
	ZeroTwoWeekFrac float64
}

// Figure6PlaytimeCDF reproduces Fig 6.
func Figure6PlaytimeCDF(v *Vectors) PlaytimeCDFResult {
	res := PlaytimeCDFResult{
		TotalCDF:        stats.EmpiricalCDF(v.TotalH),
		TwoWeekCDF:      stats.EmpiricalCDF(v.TwoWkH),
		ZeroTwoWeekFrac: stats.ZeroFraction(v.TwoWkH),
	}
	res.Top20TotalShare = stats.TopShare(nonZero(v.TotalH), 0.20)
	res.Top10TwoWeekShare = stats.TopShare(v.TwoWkH, 0.10)
	return res
}

// TwoWeekResult carries Fig 7: the nonzero two-week distribution.
type TwoWeekResult struct {
	Bins []stats.Bin
	P80  float64
	Max  float64
	// NearMaxFrac: users at 80-90 % of the 336-hour bound (§6.1 idlers).
	NearMaxFrac float64
}

// Figure7NonZeroTwoWeek reproduces Fig 7 (hours).
func Figure7NonZeroTwoWeek(v *Vectors) TwoWeekResult {
	nz := nonZero(v.TwoWkH)
	res := TwoWeekResult{
		Bins: stats.LogBins(nz, 10),
		P80:  stats.Percentile(nz, 80),
	}
	near := 0
	for _, h := range nz {
		if h > res.Max {
			res.Max = h
		}
		if h >= 0.8*336 && h <= 0.9*336 {
			near++
		}
	}
	if len(v.TwoWkH) > 0 {
		res.NearMaxFrac = float64(near) / float64(len(v.TwoWkH))
	}
	return res
}

// MarketValueResult carries Fig 8.
type MarketValueResult struct {
	Bins []stats.Bin
	P80  float64
	Max  float64
	// UptickAccounts counts accounts valued $14,710-$15,250 (§6.1 calls
	// this anomaly out alongside Fig 4's).
	UptickAccounts int
	// Top20ValueShare: top 20 % of owners hold this share of total value
	// (paper: 73 %).
	Top20ValueShare float64
}

// Figure8MarketValue reproduces Fig 8 (dollars).
func Figure8MarketValue(v *Vectors) MarketValueResult {
	nz := nonZero(v.ValueD)
	res := MarketValueResult{
		Bins:            stats.LogBins(nz, 10),
		P80:             stats.Percentile(nz, 80),
		Top20ValueShare: stats.TopShare(nz, 0.20),
	}
	for _, d := range nz {
		if d > res.Max {
			res.Max = d
		}
		if d >= 14710 && d <= 15250 {
			res.UptickAccounts++
		}
	}
	return res
}

// GenreExpenditureRow is one Fig 9 bar pair.
type GenreExpenditureRow struct {
	Genre string
	// PlaytimeHours is cumulative playtime on games with the label.
	PlaytimeHours float64
	// ValueUSD is the cumulative market value of owned games with the label.
	ValueUSD float64
	// PlaytimeShare and ValueShare are fractions of the all-genre sums
	// (labels overlap, as in the paper).
	PlaytimeShare float64
	ValueShare    float64
}

// Figure9GenreExpenditure reproduces Fig 9.
func Figure9GenreExpenditure(s *dataset.Snapshot) []GenreExpenditureRow {
	type meta struct {
		genres []string
		price  int64
	}
	gameMeta := map[uint32]meta{}
	for i := range s.Games {
		gameMeta[s.Games[i].AppID] = meta{genres: s.Games[i].Genres, price: s.Games[i].PriceCents}
	}
	play := map[string]float64{}
	value := map[string]float64{}
	var playSum, valueSum float64
	for i := range s.Users {
		for _, og := range s.Users[i].Games {
			m := gameMeta[og.AppID]
			for _, g := range m.genres {
				h := float64(og.TotalMinutes) / 60
				d := float64(m.price) / 100
				play[g] += h
				value[g] += d
				playSum += h
				valueSum += d
			}
		}
	}
	var rows []GenreExpenditureRow
	for g := range play {
		row := GenreExpenditureRow{Genre: g, PlaytimeHours: play[g], ValueUSD: value[g]}
		if playSum > 0 {
			row.PlaytimeShare = play[g] / playSum
		}
		if valueSum > 0 {
			row.ValueShare = value[g] / valueSum
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].PlaytimeHours > rows[b].PlaytimeHours })
	return rows
}

// MultiplayerShareResult carries Fig 10.
type MultiplayerShareResult struct {
	// CatalogShare: fraction of games with a multiplayer component
	// (paper: 48.7 %).
	CatalogShare float64
	// TotalShare / TwoWeekShare: fraction of playtime minutes on
	// multiplayer games (paper: 57.7 % / 67.7 %).
	TotalShare   float64
	TwoWeekShare float64
	// UsersOnlyMultiplayerTwoWeek: among users with two-week playtime,
	// the fraction whose entire fortnight was multiplayer.
	UsersOnlyMultiplayerTwoWeek float64
}

// Figure10MultiplayerShare reproduces Fig 10.
func Figure10MultiplayerShare(s *dataset.Snapshot) MultiplayerShareResult {
	mp := map[uint32]bool{}
	mpGames := 0
	for i := range s.Games {
		mp[s.Games[i].AppID] = s.Games[i].Multiplayer
		if s.Games[i].Multiplayer {
			mpGames++
		}
	}
	var res MultiplayerShareResult
	if len(s.Games) > 0 {
		res.CatalogShare = float64(mpGames) / float64(len(s.Games))
	}
	var mpTot, tot, mpTW, tw float64
	var twUsers, twOnlyMP int
	for i := range s.Users {
		userTW, userMPTW := int64(0), int64(0)
		for _, og := range s.Users[i].Games {
			tot += float64(og.TotalMinutes)
			tw += float64(og.TwoWeekMinutes)
			userTW += int64(og.TwoWeekMinutes)
			if mp[og.AppID] {
				mpTot += float64(og.TotalMinutes)
				mpTW += float64(og.TwoWeekMinutes)
				userMPTW += int64(og.TwoWeekMinutes)
			}
		}
		if userTW > 0 {
			twUsers++
			if userMPTW == userTW {
				twOnlyMP++
			}
		}
	}
	if tot > 0 {
		res.TotalShare = mpTot / tot
	}
	if tw > 0 {
		res.TwoWeekShare = mpTW / tw
	}
	if twUsers > 0 {
		res.UsersOnlyMultiplayerTwoWeek = float64(twOnlyMP) / float64(twUsers)
	}
	return res
}
