package dists

import (
	"math"
)

// TruncatedPowerLaw is the power law with exponential cutoff,
// p(x) ∝ x^-α e^{-λx} for x >= xmin. Its normalization is
// λ^{α-1} / Γ(1-α, λ·xmin), where Γ is the upper incomplete gamma
// function evaluated at a (possibly negative) first argument.
type TruncatedPowerLaw struct {
	Alpha  float64
	Lambda float64
	Xmin   float64

	logNorm float64 // cached log of the normalization constant
}

// NewTruncatedPowerLaw constructs the distribution with its normalization
// precomputed. Requires lambda > 0; for lambda == 0 use PowerLaw.
func NewTruncatedPowerLaw(alpha, lambda, xmin float64) TruncatedPowerLaw {
	t := TruncatedPowerLaw{Alpha: alpha, Lambda: lambda, Xmin: xmin}
	// ∫_{xmin}^∞ x^-α e^-λx dx = λ^{α-1} Γ(1-α, λ·xmin), so the density is
	// x^-α e^-λx · λ^{1-α} / Γ(1-α, λ·xmin).
	g := UpperIncGamma(1-alpha, lambda*xmin)
	t.logNorm = (1-alpha)*math.Log(lambda) - math.Log(g)
	return t
}

// Name implements TailDist.
func (t TruncatedPowerLaw) Name() string { return "truncated power law" }

// NumParams implements TailDist.
func (t TruncatedPowerLaw) NumParams() int { return 2 }

// LogPDF implements TailDist.
func (t TruncatedPowerLaw) LogPDF(x float64) float64 {
	if x < t.Xmin {
		return math.Inf(-1)
	}
	return t.logNorm - t.Alpha*math.Log(x) - t.Lambda*x
}

// CDF implements TailDist:
// CDF(x) = 1 - Γ(1-α, λx) / Γ(1-α, λ·xmin).
func (t TruncatedPowerLaw) CDF(x float64) float64 {
	if x <= t.Xmin {
		return 0
	}
	num := UpperIncGamma(1-t.Alpha, t.Lambda*x)
	den := UpperIncGamma(1-t.Alpha, t.Lambda*t.Xmin)
	c := 1 - num/den
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// FitTruncatedPowerLaw computes the MLE of (α, λ) on tail data >= xmin via
// Nelder–Mead over (α, ln λ). Initialized from the pure power-law MLE with
// a small cutoff.
func FitTruncatedPowerLaw(tail []float64, xmin float64) TruncatedPowerLaw {
	pl := FitPowerLaw(tail, xmin)
	mean := 0.0
	for _, x := range tail {
		mean += x
	}
	mean /= float64(len(tail))
	lambda0 := 1 / (10 * mean) // weak initial cutoff far into the tail
	if lambda0 <= 0 || math.IsInf(lambda0, 0) || math.IsNaN(lambda0) {
		lambda0 = 1e-6
	}
	negLL := func(p []float64) float64 {
		alpha := p[0]
		lambda := math.Exp(p[1])
		if alpha <= 0 || alpha > 20 || lambda <= 0 || math.IsInf(lambda, 0) {
			return math.MaxFloat64
		}
		t := NewTruncatedPowerLaw(alpha, lambda, xmin)
		if math.IsNaN(t.logNorm) || math.IsInf(t.logNorm, 0) {
			return math.MaxFloat64
		}
		ll := 0.0
		for _, x := range tail {
			ll += t.LogPDF(x)
		}
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			return math.MaxFloat64
		}
		return -ll
	}
	// The likelihood surface can be multi-modal in λ when the data is a
	// pure power law; try a few starting cutoffs and keep the best.
	bestV := math.MaxFloat64
	var best []float64
	for _, l0 := range []float64{lambda0, lambda0 * 100, lambda0 / 100} {
		x0 := []float64{pl.Alpha, math.Log(l0)}
		p, v := NelderMead(negLL, x0, []float64{0.3, 1.0}, 400)
		if v < bestV {
			bestV = v
			best = p
		}
	}
	return NewTruncatedPowerLaw(best[0], math.Exp(best[1]), xmin)
}

// Exponential is the shifted exponential p(x) = λ e^{-λ(x-xmin)} for
// x >= xmin — the "not heavy-tailed" null the paper tests power laws
// against.
type Exponential struct {
	Lambda float64
	Xmin   float64
}

// Name implements TailDist.
func (e Exponential) Name() string { return "exponential" }

// NumParams implements TailDist.
func (e Exponential) NumParams() int { return 1 }

// LogPDF implements TailDist.
func (e Exponential) LogPDF(x float64) float64 {
	if x < e.Xmin {
		return math.Inf(-1)
	}
	return math.Log(e.Lambda) - e.Lambda*(x-e.Xmin)
}

// CDF implements TailDist.
func (e Exponential) CDF(x float64) float64 {
	if x <= e.Xmin {
		return 0
	}
	return 1 - math.Exp(-e.Lambda*(x-e.Xmin))
}

// Quantile returns the conditional quantile.
func (e Exponential) Quantile(q float64) float64 {
	return e.Xmin - math.Log(1-q)/e.Lambda
}

// FitExponentialTail computes the closed-form MLE λ = 1/(mean - xmin).
func FitExponentialTail(tail []float64, xmin float64) Exponential {
	mean := 0.0
	for _, x := range tail {
		mean += x
	}
	mean /= float64(len(tail))
	lambda := 1 / (mean - xmin)
	if lambda <= 0 || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
		lambda = 1e9 // degenerate: all mass at xmin
	}
	return Exponential{Lambda: lambda, Xmin: xmin}
}
