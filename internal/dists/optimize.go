package dists

import "math"

// GoldenSection minimizes f over [lo, hi] to the given x-tolerance and
// returns the minimizing x. f must be unimodal on the interval for the
// result to be the global minimum.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// NelderMead minimizes f starting from x0 with the given initial step sizes.
// It returns the best point found and its value. Dimension is len(x0);
// maxIter bounds function evaluations roughly (each iteration costs 1-4
// evaluations). The implementation is the standard simplex method with
// adaptive restart disabled — adequate for the 2-parameter MLE problems in
// this repository.
func NelderMead(f func([]float64) float64, x0, step []float64, maxIter int) ([]float64, float64) {
	n := len(x0)
	// Build initial simplex of n+1 points.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := make([]float64, n)
		copy(p, x0)
		if i > 0 {
			p[i-1] += step[i-1]
		}
		pts[i] = p
		vals[i] = f(p)
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		// Order: find best, worst, second-worst.
		best, worst, second := 0, 0, 0
		for i := 1; i <= n; i++ {
			if vals[i] < vals[best] {
				best = i
			}
			if vals[i] > vals[worst] {
				worst = i
			}
		}
		for i := 0; i <= n; i++ {
			if i != worst && vals[i] > vals[second] {
				second = i
			}
		}
		if second == worst {
			for i := 0; i <= n; i++ {
				if i != worst {
					second = i
					break
				}
			}
			for i := 0; i <= n; i++ {
				if i != worst && vals[i] > vals[second] {
					second = i
				}
			}
		}
		// Convergence: simplex value spread.
		if math.Abs(vals[worst]-vals[best]) < 1e-10*(math.Abs(vals[best])+1e-10) {
			break
		}
		// Centroid of all but worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i <= n; i++ {
			if i == worst {
				continue
			}
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}
		// Reflect.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-pts[worst][j])
		}
		fr := f(xr)
		switch {
		case fr < vals[best]:
			// Expand.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if fe := f(xe); fe < fr {
				copy(pts[worst], xe)
				vals[worst] = fe
			} else {
				copy(pts[worst], xr)
				vals[worst] = fr
			}
		case fr < vals[second]:
			copy(pts[worst], xr)
			vals[worst] = fr
		default:
			// Contract.
			for j := 0; j < n; j++ {
				xc[j] = centroid[j] + rho*(pts[worst][j]-centroid[j])
			}
			if fc := f(xc); fc < vals[worst] {
				copy(pts[worst], xc)
				vals[worst] = fc
			} else {
				// Shrink toward best.
				for i := 0; i <= n; i++ {
					if i == best {
						continue
					}
					for j := 0; j < n; j++ {
						pts[i][j] = pts[best][j] + sigma*(pts[i][j]-pts[best][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return pts[best], vals[best]
}
