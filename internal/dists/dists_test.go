package dists

import (
	"math"
	"testing"
	"testing/quick"

	"steamstudy/internal/randx"
)

func TestPowerLawPDFIntegratesToOne(t *testing.T) {
	p := PowerLaw{Alpha: 2.5, Xmin: 2}
	// Integrate pdf numerically in log space.
	sum := 0.0
	const n = 100000
	lo, hi := math.Log(2.0), math.Log(2.0)+25
	h := (hi - lo) / n
	for i := 0; i <= n; i++ {
		u := lo + float64(i)*h
		x := math.Exp(u)
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * p.PDF(x) * x
	}
	if got := sum * h; math.Abs(got-1) > 1e-4 {
		t.Fatalf("power-law pdf integrates to %v", got)
	}
}

func TestPowerLawQuantileInvertsCDF(t *testing.T) {
	p := PowerLaw{Alpha: 1.8, Xmin: 1}
	err := quick.Check(func(uRaw float64) bool {
		u := math.Abs(math.Mod(uRaw, 1))
		if u >= 0.999999 {
			return true
		}
		x := p.Quantile(u)
		return math.Abs(p.CDF(x)-u) < 1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	r := randx.New(101)
	const trueAlpha, xmin = 2.4, 3.0
	data := make([]float64, 50000)
	for i := range data {
		data[i] = r.Pareto(trueAlpha, xmin)
	}
	fit := FitPowerLaw(data, xmin)
	if math.Abs(fit.Alpha-trueAlpha) > 0.03 {
		t.Fatalf("fit alpha %v, want %v", fit.Alpha, trueAlpha)
	}
}

func TestFitDiscretePowerLawRecoversAlpha(t *testing.T) {
	r := randx.New(102)
	const trueAlpha = 2.7
	// Exact inverse-CDF sampler as the oracle (the randx sampler uses the
	// Clauset continuous approximation, which is biased at kmin=1).
	p := NewDiscretePowerLaw(trueAlpha, 1)
	const tableSize = 1 << 18
	cdf := make([]float64, tableSize)
	for k := 1; k <= tableSize; k++ {
		cdf[k-1] = p.CDF(float64(k))
	}
	sample := func() float64 {
		u := r.Float64()
		lo, hi := 0, tableSize-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return float64(lo + 1)
	}
	data := make([]float64, 30000)
	for i := range data {
		data[i] = sample()
	}
	fit := FitDiscretePowerLaw(data, 1)
	if math.Abs(fit.Alpha-trueAlpha) > 0.05 {
		t.Fatalf("discrete fit alpha %v, want %v", fit.Alpha, trueAlpha)
	}
}

func TestDiscretePowerLawCDFBounds(t *testing.T) {
	p := NewDiscretePowerLaw(2.5, 1)
	prev := 0.0
	for k := 1; k <= 1000; k *= 2 {
		c := p.CDF(float64(k))
		if c < prev || c < 0 || c > 1 {
			t.Fatalf("discrete CDF not monotone in [0,1] at k=%d: %v after %v", k, c, prev)
		}
		prev = c
	}
	if p.CDF(1e9) < 0.999999 {
		t.Fatalf("discrete CDF does not approach 1: %v", p.CDF(1e9))
	}
}

func TestFitLognormalFullRecovers(t *testing.T) {
	r := randx.New(103)
	const mu, sigma = 1.7, 0.9
	data := make([]float64, 50000)
	for i := range data {
		data[i] = r.Lognormal(mu, sigma)
	}
	fit := FitLognormalFull(data)
	if math.Abs(fit.Mu-mu) > 0.02 || math.Abs(fit.Sigma-sigma) > 0.02 {
		t.Fatalf("lognormal fit (%v, %v), want (%v, %v)", fit.Mu, fit.Sigma, mu, sigma)
	}
}

func TestFitLognormalTailRecovers(t *testing.T) {
	r := randx.New(104)
	const mu, sigma, xmin = 1.0, 1.2, 5.0
	var data []float64
	for len(data) < 20000 {
		x := r.Lognormal(mu, sigma)
		if x >= xmin {
			data = append(data, x)
		}
	}
	fit := FitLognormalTail(data, xmin)
	if math.Abs(fit.Mu-mu) > 0.15 || math.Abs(fit.Sigma-sigma) > 0.1 {
		t.Fatalf("truncated lognormal fit (%v, %v), want (%v, %v)", fit.Mu, fit.Sigma, mu, sigma)
	}
}

func TestLognormalTailCDFQuantileRoundTrip(t *testing.T) {
	l := NewLognormal(2, 1.1, 4)
	for _, q := range []float64{0.01, 0.3, 0.5, 0.9, 0.99} {
		x := l.Quantile(q)
		if x < 4 {
			t.Fatalf("tail quantile below xmin: %v", x)
		}
		if back := l.CDF(x); math.Abs(back-q) > 1e-8 {
			t.Fatalf("CDF(Quantile(%v)) = %v", q, back)
		}
	}
}

func TestTruncatedPowerLawNormalization(t *testing.T) {
	tp := NewTruncatedPowerLaw(1.8, 0.05, 1)
	// Numerically integrate the pdf.
	sum := 0.0
	const n = 200000
	lo, hi := 0.0, 12.0 // ln x range: 1 .. e^12
	h := (hi - lo) / n
	for i := 0; i <= n; i++ {
		x := math.Exp(lo + float64(i)*h)
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * math.Exp(tp.LogPDF(x)) * x
	}
	if got := sum * h; math.Abs(got-1) > 1e-3 {
		t.Fatalf("truncated power-law pdf integrates to %v", got)
	}
}

func TestTruncatedPowerLawCDFMonotone(t *testing.T) {
	tp := NewTruncatedPowerLaw(2.0, 0.01, 1)
	prev := -1.0
	for x := 1.0; x < 1e4; x *= 1.5 {
		c := tp.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("TPL CDF not monotone at %v: %v after %v", x, c, prev)
		}
		prev = c
	}
	if tp.CDF(1e6) < 0.9999 {
		t.Fatalf("TPL CDF does not approach 1: %v", tp.CDF(1e6))
	}
}

func TestFitTruncatedPowerLawRecovers(t *testing.T) {
	r := randx.New(105)
	const alpha, lambda, xmin = 1.7, 0.02, 1.0
	data := make([]float64, 30000)
	for i := range data {
		data[i] = r.TruncatedPowerLaw(alpha, lambda, xmin)
	}
	fit := FitTruncatedPowerLaw(data, xmin)
	if math.Abs(fit.Alpha-alpha) > 0.15 {
		t.Fatalf("TPL fit alpha %v, want %v", fit.Alpha, alpha)
	}
	if fit.Lambda < lambda/3 || fit.Lambda > lambda*3 {
		t.Fatalf("TPL fit lambda %v, want ~%v", fit.Lambda, lambda)
	}
}

func TestExponentialFitAndRoundTrip(t *testing.T) {
	r := randx.New(106)
	const lambda, xmin = 0.25, 2.0
	data := make([]float64, 40000)
	for i := range data {
		data[i] = xmin + r.ExpFloat64()/lambda
	}
	fit := FitExponentialTail(data, xmin)
	if math.Abs(fit.Lambda-lambda) > 0.01 {
		t.Fatalf("exponential fit lambda %v, want %v", fit.Lambda, lambda)
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		x := fit.Quantile(q)
		if math.Abs(fit.CDF(x)-q) > 1e-10 {
			t.Fatalf("exponential quantile round trip failed at %v", q)
		}
	}
}

func TestKSStatisticPerfectFit(t *testing.T) {
	// The KS distance of a sample against its own empirical quantiles
	// should be small; against a badly wrong model, large.
	r := randx.New(107)
	p := PowerLaw{Alpha: 2.2, Xmin: 1}
	data := make([]float64, 20000)
	for i := range data {
		data[i] = r.Pareto(2.2, 1)
	}
	sorted := SortedCopy(data)
	good := KSStatistic(sorted, p.CDF)
	bad := KSStatistic(sorted, PowerLaw{Alpha: 4.5, Xmin: 1}.CDF)
	if good > 0.02 {
		t.Fatalf("KS for true model too large: %v", good)
	}
	if bad < 5*good {
		t.Fatalf("KS did not separate models: good=%v bad=%v", good, bad)
	}
}

func TestQuantileSplinePassesThroughAnchors(t *testing.T) {
	anchors := []Anchor{{0.5, 4}, {0.8, 15}, {0.9, 29}, {0.95, 50}, {0.99, 122}}
	q, err := NewQuantileSpline(1, anchors, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range anchors {
		if got := q.Quantile(a.P); math.Abs(got-a.V) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", a.P, got, a.V)
		}
	}
	if q.Quantile(0) != 1 {
		t.Fatalf("Quantile(0) = %v, want min 1", q.Quantile(0))
	}
}

func TestQuantileSplineMonotone(t *testing.T) {
	q := MustQuantileSpline(1, []Anchor{{0.5, 4}, {0.9, 29}, {0.99, 122}}, 1.9, 0)
	prev := 0.0
	for u := 0.0; u < 0.999999; u += 0.001 {
		v := q.Quantile(u)
		if v < prev {
			t.Fatalf("spline not monotone at %v: %v < %v", u, v, prev)
		}
		prev = v
	}
}

func TestQuantileSplineTailIsPareto(t *testing.T) {
	q := MustQuantileSpline(1, []Anchor{{0.99, 100}}, 3.0, 0)
	// Beyond p=0.99 the tail is Pareto with alpha=3:
	// Q(u) = 100 * (0.01/(1-u))^(1/2)
	u := 0.999
	want := 100 * math.Pow(0.01/(1-u), 0.5)
	if got := q.Quantile(u); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Pareto tail Quantile(%v) = %v, want %v", u, got, want)
	}
}

func TestQuantileSplineMaxValueCap(t *testing.T) {
	q := MustQuantileSpline(1, []Anchor{{0.9, 50}}, 1.5, 1000)
	if got := q.Quantile(1 - 1e-15); got > 1000 {
		t.Fatalf("cap not applied: %v", got)
	}
}

func TestQuantileSplineCDFInverts(t *testing.T) {
	q := MustQuantileSpline(1, []Anchor{{0.5, 4}, {0.9, 29}, {0.99, 122}}, 2.2, 0)
	for _, u := range []float64{0.1, 0.5, 0.77, 0.95, 0.999} {
		x := q.Quantile(u)
		if back := q.CDF(x); math.Abs(back-u) > 1e-6 {
			t.Fatalf("CDF(Quantile(%v)) = %v", u, back)
		}
	}
}

func TestQuantileSplineRejectsBadAnchors(t *testing.T) {
	if _, err := NewQuantileSpline(1, nil, 2, 0); err == nil {
		t.Fatal("empty anchors accepted")
	}
	if _, err := NewQuantileSpline(1, []Anchor{{0.5, 4}, {0.4, 5}}, 2, 0); err == nil {
		t.Fatal("non-ascending probabilities accepted")
	}
	if _, err := NewQuantileSpline(1, []Anchor{{0.5, 4}, {0.6, 3}}, 2, 0); err == nil {
		t.Fatal("decreasing values accepted")
	}
	if _, err := NewQuantileSpline(1, []Anchor{{0.5, 4}}, 1.0, 0); err == nil {
		t.Fatal("tail alpha <= 1 accepted")
	}
	if _, err := NewQuantileSpline(0, []Anchor{{0.5, 4}}, 2, 0); err == nil {
		t.Fatal("non-positive min accepted")
	}
}

func TestZeroInflatedQuantile(t *testing.T) {
	tail := MustQuantileSpline(1, []Anchor{{0.5, 10}}, 2, 0)
	z := ZeroInflated{ZeroFrac: 0.8, Tail: tail}
	if z.Quantile(0.5) != 0 {
		t.Fatal("expected zero below the zero mass")
	}
	if got := z.Quantile(0.9); math.Abs(got-10) > 1e-9 {
		// u=0.9 maps to tail-u (0.9-0.8)/0.2 = 0.5 -> anchor value 10.
		t.Fatalf("tail quantile = %v, want 10", got)
	}
	full := ZeroInflated{ZeroFrac: 1, Tail: tail}
	if full.Quantile(0.999) != 0 {
		t.Fatal("fully zero-inflated distribution returned nonzero")
	}
}
