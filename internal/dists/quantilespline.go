package dists

import (
	"fmt"
	"math"
	"sort"
)

// QuantileSpline is a monotone quantile function assembled from empirical
// percentile anchors with a Pareto-extrapolated upper tail. The simulator
// uses one per user attribute: the paper publishes exact percentiles
// (Table 3), so instead of hunting for a parametric family that passes
// through them, we interpolate the quantile function through the published
// anchors in log-value space and extend beyond the last anchor with a
// power-law tail whose exponent controls the extreme behaviour
// (top-20 % shares, maximum values).
//
// The resulting distribution is long-tailed by construction — log-linear
// quantile interpolation between anchors corresponds to piecewise Pareto
// segments — which matches the families the paper fits.
type QuantileSpline struct {
	ps   []float64 // anchor probabilities, ascending, in (0, 1)
	vs   []float64 // anchor values, ascending, > 0
	logv []float64 // cached ln(vs)

	// TailAlpha is the Pareto exponent used beyond the last anchor:
	// Q(u) = v_last * ((1-p_last)/(1-u))^(1/(TailAlpha-1)).
	TailAlpha float64
	// MaxValue caps the extrapolated tail (0 = uncapped).
	MaxValue float64
	// MinValue is Q(0) — the smallest attainable value.
	MinValue float64
}

// Anchor is one (probability, value) calibration point.
type Anchor struct {
	P float64
	V float64
}

// NewQuantileSpline builds a spline through the given anchors.
// Anchors must have strictly increasing probabilities in (0, 1) and
// non-decreasing positive values. minValue is the value at probability 0;
// tailAlpha > 1 sets the Pareto tail beyond the last anchor.
func NewQuantileSpline(minValue float64, anchors []Anchor, tailAlpha, maxValue float64) (*QuantileSpline, error) {
	if len(anchors) == 0 {
		return nil, fmt.Errorf("dists: quantile spline needs at least one anchor")
	}
	if tailAlpha <= 1 {
		return nil, fmt.Errorf("dists: tail alpha must exceed 1, got %v", tailAlpha)
	}
	if minValue <= 0 {
		return nil, fmt.Errorf("dists: min value must be positive, got %v", minValue)
	}
	q := &QuantileSpline{TailAlpha: tailAlpha, MaxValue: maxValue, MinValue: minValue}
	q.ps = append(q.ps, 0)
	q.vs = append(q.vs, minValue)
	prevP, prevV := 0.0, minValue
	for _, a := range anchors {
		if a.P <= prevP || a.P >= 1 {
			return nil, fmt.Errorf("dists: anchor probabilities must be ascending in (0,1); got %v after %v", a.P, prevP)
		}
		if a.V < prevV || a.V <= 0 {
			return nil, fmt.Errorf("dists: anchor values must be non-decreasing positive; got %v after %v", a.V, prevV)
		}
		q.ps = append(q.ps, a.P)
		q.vs = append(q.vs, a.V)
		prevP, prevV = a.P, a.V
	}
	q.logv = make([]float64, len(q.vs))
	for i, v := range q.vs {
		q.logv[i] = math.Log(v)
	}
	return q, nil
}

// MustQuantileSpline is NewQuantileSpline that panics on error; used for
// package-level calibration constants that are validated by tests.
func MustQuantileSpline(minValue float64, anchors []Anchor, tailAlpha, maxValue float64) *QuantileSpline {
	q, err := NewQuantileSpline(minValue, anchors, tailAlpha, maxValue)
	if err != nil {
		panic(err)
	}
	return q
}

// Quantile maps u in [0, 1) to a value. Between anchors the interpolation
// is linear in (probability, log value); beyond the last anchor the value
// follows the Pareto tail.
func (q *QuantileSpline) Quantile(u float64) float64 {
	if u <= 0 {
		return q.vs[0]
	}
	last := len(q.ps) - 1
	if u >= q.ps[last] {
		// Pareto extension beyond the final anchor.
		pLast := q.ps[last]
		vLast := q.vs[last]
		if u >= 1 {
			u = 1 - 1e-12
		}
		v := vLast * math.Pow((1-pLast)/(1-u), 1/(q.TailAlpha-1))
		if q.MaxValue > 0 && v > q.MaxValue {
			v = q.MaxValue
		}
		return v
	}
	i := sort.SearchFloat64s(q.ps, u)
	// q.ps[i-1] <= u < q.ps[i] (u > 0 so i >= 1).
	if i == 0 {
		return q.vs[0]
	}
	t := (u - q.ps[i-1]) / (q.ps[i] - q.ps[i-1])
	return math.Exp(q.logv[i-1] + t*(q.logv[i]-q.logv[i-1]))
}

// CDF numerically inverts the quantile function (bisection). Exposed for
// tests and for the report module's overlay curves.
func (q *QuantileSpline) CDF(x float64) float64 {
	if x <= q.vs[0] {
		return 0
	}
	lo, hi := 0.0, 1-1e-12
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if q.Quantile(mid) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ZeroInflated wraps a quantile function with a point mass at zero: with
// probability ZeroFrac the value is 0, otherwise the tail quantile is used
// with the rescaled uniform. This models attributes like two-week playtime
// where the paper reports that over 80 % of users are exactly zero.
type ZeroInflated struct {
	ZeroFrac float64
	Tail     *QuantileSpline
}

// Quantile maps u in [0, 1) to a value with the zero mass at the bottom of
// the distribution (monotone, so copula rank structure is preserved).
func (z ZeroInflated) Quantile(u float64) float64 {
	if u < z.ZeroFrac {
		return 0
	}
	if z.ZeroFrac >= 1 {
		return 0
	}
	return z.Tail.Quantile((u - z.ZeroFrac) / (1 - z.ZeroFrac))
}
