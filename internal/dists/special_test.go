package dists

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.025, 0.2, 0.5, 0.8, 0.975, 0.9999, 1 - 1e-9} {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-10*math.Max(1, 1/p) && math.Abs(back-p) > 1e-12 {
			t.Fatalf("NormalQuantile(%v) = %v, CDF back = %v", p, x, back)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959963984540054,
		0.025: -1.959963984540054,
		0.84:  0.994457883209753,
	}
	for p, want := range cases {
		if got := NormalQuantile(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("endpoint quantiles not infinite")
	}
}

func TestNormalQuantileMonotone(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) < NormalQuantile(pb)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpperIncGammaPositiveA(t *testing.T) {
	// Γ(1, x) = e^-x
	for _, x := range []float64{0.1, 1, 5, 20} {
		if got, want := UpperIncGamma(1, x), math.Exp(-x); math.Abs(got-want) > 1e-12*want {
			t.Fatalf("Γ(1, %v) = %v, want %v", x, got, want)
		}
	}
	// Γ(2, x) = (x+1) e^-x
	for _, x := range []float64{0.5, 2, 10} {
		want := (x + 1) * math.Exp(-x)
		if got := UpperIncGamma(2, x); math.Abs(got-want) > 1e-11*want {
			t.Fatalf("Γ(2, %v) = %v, want %v", x, got, want)
		}
	}
	// Γ(a, 0) = Γ(a)
	if got := UpperIncGamma(3.5, 0); math.Abs(got-math.Gamma(3.5)) > 1e-12 {
		t.Fatalf("Γ(3.5, 0) = %v, want Γ(3.5) = %v", got, math.Gamma(3.5))
	}
}

func TestUpperIncGammaHalf(t *testing.T) {
	// Γ(1/2, x) = sqrt(pi) * erfc(sqrt(x))
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Sqrt(math.Pi) * math.Erfc(math.Sqrt(x))
		if got := UpperIncGamma(0.5, x); math.Abs(got-want) > 1e-10*want {
			t.Fatalf("Γ(1/2, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestUpperIncGammaNegativeA(t *testing.T) {
	// Validate the recurrence against direct numerical integration of
	// ∫_x^∞ t^{a-1} e^-t dt for negative a.
	for _, tc := range []struct{ a, x float64 }{
		{-0.5, 0.5}, {-1.5, 1}, {-0.3, 0.01}, {-2.2, 2},
	} {
		want := numericUpperGamma(tc.a, tc.x)
		got := UpperIncGamma(tc.a, tc.x)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("Γ(%v, %v) = %v, numeric %v", tc.a, tc.x, got, want)
		}
	}
}

// numericUpperGamma integrates t^{a-1} e^-t from x to ~inf with Simpson's
// rule on a log-spaced grid (test oracle only).
func numericUpperGamma(a, x float64) float64 {
	f := func(t float64) float64 { return math.Pow(t, a-1) * math.Exp(-t) }
	// Integrate in u = ln t to handle the wide range.
	lo, hi := math.Log(x), math.Log(x)+60
	const n = 200000
	h := (hi - lo) / n
	sum := 0.0
	for i := 0; i <= n; i++ {
		u := lo + float64(i)*h
		t := math.Exp(u)
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * f(t) * t // dt = t du
	}
	return sum * h
}

func TestHurwitzZetaRiemann(t *testing.T) {
	// ζ(s, 1) = ζ(s); known values.
	cases := map[float64]float64{
		2: math.Pi * math.Pi / 6,
		4: math.Pow(math.Pi, 4) / 90,
	}
	for s, want := range cases {
		if got := HurwitzZeta(s, 1); math.Abs(got-want) > 1e-10 {
			t.Fatalf("ζ(%v, 1) = %v, want %v", s, got, want)
		}
	}
}

func TestHurwitzZetaShiftIdentity(t *testing.T) {
	// ζ(s, q) = ζ(s, q+1) + q^-s
	for _, s := range []float64{1.5, 2.5, 3.2} {
		for _, q := range []float64{1, 2, 5.5} {
			lhs := HurwitzZeta(s, q)
			rhs := HurwitzZeta(s, q+1) + math.Pow(q, -s)
			if math.Abs(lhs-rhs) > 1e-10*lhs {
				t.Fatalf("shift identity failed: ζ(%v,%v)=%v vs %v", s, q, lhs, rhs)
			}
		}
	}
}

func TestGoldenSectionFindsMinimum(t *testing.T) {
	f := func(x float64) float64 { return (x - 2.75) * (x - 2.75) }
	x := GoldenSection(f, 0, 10, 1e-8)
	if math.Abs(x-2.75) > 1e-6 {
		t.Fatalf("golden section min %v, want 2.75", x)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(p []float64) float64 {
		x, y := p[0], p[1]
		return 100*(y-x*x)*(y-x*x) + (1-x)*(1-x)
	}
	best, v := NelderMead(f, []float64{-1.2, 1}, []float64{0.5, 0.5}, 4000)
	if math.Abs(best[0]-1) > 1e-3 || math.Abs(best[1]-1) > 1e-3 {
		t.Fatalf("Nelder-Mead ended at %v (f=%v), want (1,1)", best, v)
	}
}
