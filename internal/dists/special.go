// Package dists implements the probability distributions used throughout
// the reproduction: the four heavy-tailed families the paper fits
// (power law, lognormal, truncated power law, exponential) plus the special
// functions they require (normal quantile, upper incomplete gamma, Hurwitz
// zeta). Each family exposes density, CDF/CCDF, quantile, and tail-
// conditional log-likelihood, which is what the heavytail fitter consumes.
package dists

import (
	"math"
)

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) of
// p in (0, 1). It uses Acklam's rational approximation refined by one
// Halley step against math.Erfc, giving near machine precision.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// UpperIncGamma computes the (non-regularized) upper incomplete gamma
// function Γ(a, x) for x > 0 and any real non-positive-integer a,
// including negative a (which arises in the truncated-power-law
// normalization Γ(1-α, λ·xmin) with α > 1).
func UpperIncGamma(a, x float64) float64 {
	if x <= 0 {
		if a > 0 {
			g, _ := math.Lgamma(a)
			return math.Exp(g)
		}
		return math.Inf(1)
	}
	if a > 0 {
		return upperIncGammaPos(a, x)
	}
	// Recurrence to lift a above zero:
	// Γ(a, x) = (Γ(a+1, x) - x^a e^{-x}) / a
	// Applied top-down: find k with a+k in (0, 1], compute Γ(a+k, x),
	// then walk back down.
	k := int(math.Ceil(-a)) + 1
	ak := a + float64(k)
	g := upperIncGammaPos(ak, x)
	for i := k - 1; i >= 0; i-- {
		ai := a + float64(i)
		g = (g - math.Pow(x, ai)*math.Exp(-x)) / ai
	}
	return g
}

// upperIncGammaPos computes Γ(a, x) for a > 0, x > 0 via the regularized
// series (x < a+1) or Lentz continued fraction (x >= a+1).
func upperIncGammaPos(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series for the regularized lower P(a, x); Q = 1 - P.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		p := sum * math.Exp(-x+a*math.Log(x)-lg)
		return math.Exp(lg) * (1 - p)
	}
	// Continued fraction for Q(a, x) (Numerical Recipes gcf).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)) * h
}

// bernoulli2k holds B_2, B_4, ..., B_10 for the Euler–Maclaurin tail of the
// Hurwitz zeta function.
var bernoulli2k = [5]float64{1.0 / 6, -1.0 / 30, 1.0 / 42, -1.0 / 30, 5.0 / 66}

// HurwitzZeta computes ζ(s, q) = Σ_{k≥0} (k+q)^{-s} for s > 1, q > 0,
// via Euler–Maclaurin summation. Used for discrete power-law likelihoods.
func HurwitzZeta(s, q float64) float64 {
	if s <= 1 {
		return math.Inf(1)
	}
	if q <= 0 {
		return math.NaN()
	}
	// ζ(s,q) = Σ_{k<N}(k+q)^-s + (N+q)^{1-s}/(s-1) + (N+q)^-s/2
	//          + Σ_m B_{2m}/(2m)! · (s)_{2m-1} · (N+q)^{-s-2m+1}
	// with (s)_{2m-1} the rising factorial s(s+1)···(s+2m-2).
	const n = 20
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k)+q, -s)
	}
	nq := float64(n) + q
	sum += math.Pow(nq, 1-s)/(s-1) + 0.5*math.Pow(nq, -s)
	rising := s              // (s)_1
	pw := math.Pow(nq, -s-1) // (N+q)^{-s-2m+1} for m=1
	fact := 2.0              // (2m)! for m=1
	for m := 1; m <= len(bernoulli2k); m++ {
		sum += bernoulli2k[m-1] / fact * rising * pw
		rising *= (s + float64(2*m-1)) * (s + float64(2*m))
		pw /= nq * nq
		fact *= float64(2*m+1) * float64(2*m+2)
	}
	return sum
}

// LogChoose returns log(n choose k) via lgamma.
func LogChoose(n, k float64) float64 {
	a, _ := math.Lgamma(n + 1)
	b, _ := math.Lgamma(k + 1)
	c, _ := math.Lgamma(n - k + 1)
	return a - b - c
}
