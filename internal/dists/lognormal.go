package dists

import (
	"math"
)

// Lognormal is the lognormal distribution; when used as a TailDist it is
// conditioned on x >= Xmin (the form the fitter compares against other
// families on the same tail).
type Lognormal struct {
	Mu    float64 // mean of ln X
	Sigma float64 // stddev of ln X
	Xmin  float64 // left truncation point (0 for the full distribution)

	logCCDFXmin float64 // cached ln P(X >= Xmin) under the untruncated law
}

// NewLognormal constructs a (possibly tail-conditioned) lognormal.
func NewLognormal(mu, sigma, xmin float64) Lognormal {
	l := Lognormal{Mu: mu, Sigma: sigma, Xmin: xmin}
	l.logCCDFXmin = math.Log(l.ccdfFull(xmin))
	return l
}

// Name implements TailDist.
func (l Lognormal) Name() string { return "lognormal" }

// NumParams implements TailDist.
func (l Lognormal) NumParams() int { return 2 }

// cdfFull is the untruncated lognormal CDF.
func (l Lognormal) cdfFull(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// ccdfFull is the untruncated complementary CDF.
func (l Lognormal) ccdfFull(x float64) float64 {
	if x <= 0 {
		return 1
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// LogPDF implements TailDist: the log density conditional on x >= Xmin.
func (l Lognormal) LogPDF(x float64) float64 {
	if x < l.Xmin || x <= 0 {
		return math.Inf(-1)
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	logPDF := -math.Log(x*l.Sigma*math.Sqrt(2*math.Pi)) - z*z/2
	return logPDF - l.logCCDFXmin
}

// CDF implements TailDist: the conditional CDF on [Xmin, ∞).
func (l Lognormal) CDF(x float64) float64 {
	if x <= l.Xmin {
		return 0
	}
	cXmin := l.cdfFull(l.Xmin)
	denom := 1 - cXmin
	if denom <= 0 {
		return 1
	}
	return (l.cdfFull(x) - cXmin) / denom
}

// Quantile returns the conditional quantile of the tail distribution.
func (l Lognormal) Quantile(q float64) float64 {
	cXmin := l.cdfFull(l.Xmin)
	p := cXmin + q*(1-cXmin)
	return math.Exp(l.Mu + l.Sigma*NormalQuantile(p))
}

// QuantileFull returns the untruncated lognormal quantile.
func (l Lognormal) QuantileFull(q float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormalQuantile(q))
}

// FitLognormalFull computes the closed-form MLE on untruncated data
// (every x must be > 0).
func FitLognormalFull(data []float64) Lognormal {
	n := float64(len(data))
	sum := 0.0
	for _, x := range data {
		sum += math.Log(x)
	}
	mu := sum / n
	ss := 0.0
	for _, x := range data {
		d := math.Log(x) - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / n)
	if sigma <= 0 {
		sigma = 1e-9
	}
	return NewLognormal(mu, sigma, 0)
}

// FitLognormalTail computes the MLE of a lognormal conditioned on
// x >= xmin, via Nelder–Mead on (mu, log sigma). The truncated likelihood
// has no closed form. Initialized from the untruncated MLE.
func FitLognormalTail(tail []float64, xmin float64) Lognormal {
	init := FitLognormalFull(tail)
	negLL := func(p []float64) float64 {
		mu := p[0]
		sigma := math.Exp(p[1])
		l := NewLognormal(mu, sigma, xmin)
		ll := 0.0
		for _, x := range tail {
			ll += l.LogPDF(x)
		}
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			return math.MaxFloat64
		}
		return -ll
	}
	x0 := []float64{init.Mu, math.Log(init.Sigma)}
	best, _ := NelderMead(negLL, x0, []float64{0.5, 0.3}, 400)
	return NewLognormal(best[0], math.Exp(best[1]), xmin)
}
