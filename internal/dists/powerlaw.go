package dists

import (
	"math"
	"sort"
)

// TailDist is a probability distribution conditioned on x >= Xmin, the form
// in which the Clauset/Alstott methodology compares candidate families.
type TailDist interface {
	// Name identifies the family ("power law", "lognormal", ...).
	Name() string
	// LogPDF is the log density at x (conditional on x >= Xmin).
	LogPDF(x float64) float64
	// CDF is the conditional cumulative distribution at x.
	CDF(x float64) float64
	// NumParams is the number of free parameters (for information criteria).
	NumParams() int
}

// PowerLaw is the continuous power law p(x) = (α-1)/xmin · (x/xmin)^-α
// for x >= xmin, α > 1.
type PowerLaw struct {
	Alpha float64
	Xmin  float64
}

// Name implements TailDist.
func (p PowerLaw) Name() string { return "power law" }

// NumParams implements TailDist.
func (p PowerLaw) NumParams() int { return 1 }

// PDF returns the density at x.
func (p PowerLaw) PDF(x float64) float64 {
	if x < p.Xmin {
		return 0
	}
	return (p.Alpha - 1) / p.Xmin * math.Pow(x/p.Xmin, -p.Alpha)
}

// LogPDF implements TailDist.
func (p PowerLaw) LogPDF(x float64) float64 {
	if x < p.Xmin {
		return math.Inf(-1)
	}
	return math.Log(p.Alpha-1) - math.Log(p.Xmin) - p.Alpha*math.Log(x/p.Xmin)
}

// CDF implements TailDist.
func (p PowerLaw) CDF(x float64) float64 {
	if x <= p.Xmin {
		return 0
	}
	return 1 - math.Pow(x/p.Xmin, 1-p.Alpha)
}

// CCDF returns 1 - CDF(x).
func (p PowerLaw) CCDF(x float64) float64 {
	if x <= p.Xmin {
		return 1
	}
	return math.Pow(x/p.Xmin, 1-p.Alpha)
}

// Quantile returns the conditional quantile at probability q in [0, 1).
func (p PowerLaw) Quantile(q float64) float64 {
	return p.Xmin * math.Pow(1-q, -1/(p.Alpha-1))
}

// FitPowerLaw computes the MLE α for a continuous power law on the tail
// data (all values must be >= xmin): α = 1 + n / Σ ln(xᵢ/xmin).
func FitPowerLaw(tail []float64, xmin float64) PowerLaw {
	sum := 0.0
	for _, x := range tail {
		sum += math.Log(x / xmin)
	}
	alpha := 1 + float64(len(tail))/sum
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || alpha <= 1 {
		alpha = 1 + 1e-6
	}
	return PowerLaw{Alpha: alpha, Xmin: xmin}
}

// DiscretePowerLaw is the discrete power law P(k) = k^-α / ζ(α, kmin)
// for integer k >= kmin, α > 1.
type DiscretePowerLaw struct {
	Alpha float64
	Kmin  float64
	zeta  float64 // cached normalization ζ(α, kmin)
}

// NewDiscretePowerLaw constructs the distribution with its normalization
// precomputed.
func NewDiscretePowerLaw(alpha, kmin float64) DiscretePowerLaw {
	return DiscretePowerLaw{Alpha: alpha, Kmin: kmin, zeta: HurwitzZeta(alpha, kmin)}
}

// Name implements TailDist.
func (p DiscretePowerLaw) Name() string { return "power law (discrete)" }

// NumParams implements TailDist.
func (p DiscretePowerLaw) NumParams() int { return 1 }

// LogPMF is the log probability mass at integer k.
func (p DiscretePowerLaw) LogPMF(k float64) float64 {
	if k < p.Kmin {
		return math.Inf(-1)
	}
	return -p.Alpha*math.Log(k) - math.Log(p.zeta)
}

// LogPDF implements TailDist (alias of LogPMF for the fitter).
func (p DiscretePowerLaw) LogPDF(x float64) float64 { return p.LogPMF(x) }

// CDF implements TailDist by direct summation up to x (adequate for the
// KS computations on binned data; the sum is cut off with a tail integral
// once terms are negligible).
func (p DiscretePowerLaw) CDF(x float64) float64 {
	if x < p.Kmin {
		return 0
	}
	// Σ_{k=kmin}^{floor(x)} k^-α / ζ(α, kmin)
	// = 1 - ζ(α, floor(x)+1)/ζ(α, kmin)
	return 1 - HurwitzZeta(p.Alpha, math.Floor(x)+1)/p.zeta
}

// FitDiscretePowerLaw computes the MLE α for integer data >= kmin by
// maximizing the exact discrete likelihood with golden-section search.
func FitDiscretePowerLaw(tail []float64, kmin float64) DiscretePowerLaw {
	sumLog := 0.0
	for _, x := range tail {
		sumLog += math.Log(x)
	}
	n := float64(len(tail))
	negLL := func(alpha float64) float64 {
		return alpha*sumLog + n*math.Log(HurwitzZeta(alpha, kmin))
	}
	alpha := GoldenSection(negLL, 1.0001, 8, 1e-6)
	return NewDiscretePowerLaw(alpha, kmin)
}

// KSStatistic returns the Kolmogorov–Smirnov distance between the empirical
// CDF of tail (which must be sorted ascending) and the model's conditional
// CDF.
func KSStatistic(sortedTail []float64, cdf func(float64) float64) float64 {
	n := float64(len(sortedTail))
	maxD := 0.0
	for i, x := range sortedTail {
		m := cdf(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := math.Abs(m - lo); d > maxD {
			maxD = d
		}
		if d := math.Abs(m - hi); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// SortedCopy returns an ascending-sorted copy of xs.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
