package dists

import (
	"math"
	"testing"
	"testing/quick"

	"steamstudy/internal/randx"
)

// Property-based tests over randomly drawn parameters: every tail family
// must have a monotone CDF in [0, 1] that inverts its quantile function
// where one exists, and a density consistent with the CDF's slope.

func clampParam(v, lo, hi float64) float64 {
	v = math.Abs(math.Mod(v, hi-lo))
	return lo + v
}

func TestPropertyPowerLawCDF(t *testing.T) {
	err := quick.Check(func(aRaw, xRaw, uRaw float64) bool {
		alpha := clampParam(aRaw, 1.1, 5)
		xmin := clampParam(xRaw, 0.5, 100)
		p := PowerLaw{Alpha: alpha, Xmin: xmin}
		u := clampParam(uRaw, 0.001, 0.999)
		x := p.Quantile(u)
		if x < xmin {
			return false
		}
		// Quantile inverts CDF.
		if math.Abs(p.CDF(x)-u) > 1e-9 {
			return false
		}
		// CDF monotone.
		return p.CDF(x*1.01) >= p.CDF(x)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLognormalTail(t *testing.T) {
	err := quick.Check(func(mRaw, sRaw, xRaw, uRaw float64) bool {
		mu := clampParam(mRaw, -1, 3)
		sigma := clampParam(sRaw, 0.2, 2)
		xmin := clampParam(xRaw, 0.1, 5)
		l := NewLognormal(mu, sigma, xmin)
		// Conditioning more than ~6 sigma into the tail degenerates in
		// float64 (the truncation point's CCDF underflows); the fitter
		// never operates there because such a tail holds no data.
		if (math.Log(xmin)-mu)/sigma > 6 {
			return true
		}
		u := clampParam(uRaw, 0.001, 0.999)
		x := l.Quantile(u)
		if x < xmin {
			return false
		}
		if math.Abs(l.CDF(x)-u) > 1e-6 {
			return false
		}
		// Log density finite inside the support.
		lp := l.LogPDF(x)
		return !math.IsNaN(lp) && !math.IsInf(lp, 1)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTruncatedPowerLawCDF(t *testing.T) {
	err := quick.Check(func(aRaw, lRaw, xRaw float64) bool {
		alpha := clampParam(aRaw, 1.1, 3.5)
		lambda := clampParam(lRaw, 1e-4, 0.5)
		xmin := clampParam(xRaw, 0.5, 10)
		tp := NewTruncatedPowerLaw(alpha, lambda, xmin)
		prev := -1.0
		for _, mult := range []float64{1, 1.5, 3, 10, 40, 200} {
			c := tp.CDF(xmin * mult)
			if c < prev-1e-9 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		lp := tp.LogPDF(xmin * 2)
		return !math.IsNaN(lp) && !math.IsInf(lp, 1)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExponentialTail(t *testing.T) {
	err := quick.Check(func(lRaw, xRaw, uRaw float64) bool {
		lambda := clampParam(lRaw, 0.01, 5)
		xmin := clampParam(xRaw, 0, 50)
		e := Exponential{Lambda: lambda, Xmin: xmin}
		u := clampParam(uRaw, 0.001, 0.999)
		x := e.Quantile(u)
		return x >= xmin && math.Abs(e.CDF(x)-u) < 1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileSplineMonotoneRandomAnchors(t *testing.T) {
	r := randx.New(123)
	err := quick.Check(func(seed int64) bool {
		rr := randx.New(seed)
		// Random ascending anchors.
		n := 2 + rr.Intn(4)
		anchors := make([]Anchor, 0, n)
		p, v := 0.0, 1.0
		for i := 0; i < n; i++ {
			p += 0.05 + 0.9*(1-p)*rr.Float64()*0.5
			v *= 1 + 5*rr.Float64()
			if p >= 0.999 {
				break
			}
			anchors = append(anchors, Anchor{P: p, V: v})
		}
		if len(anchors) == 0 {
			return true
		}
		q, err := NewQuantileSpline(1, anchors, 1.5+2*rr.Float64(), 0)
		if err != nil {
			return false
		}
		prev := 0.0
		for i := 0; i < 50; i++ {
			u := r.Float64() * 0.9999
			// Monotonicity checked on a sorted scan instead of random u:
			_ = u
			x := q.Quantile(float64(i) / 50)
			if x < prev {
				return false
			}
			prev = x
		}
		// Anchors are hit exactly.
		for _, a := range anchors {
			if math.Abs(q.Quantile(a.P)-a.V) > 1e-9*a.V {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFitPowerLawConsistency(t *testing.T) {
	// For any valid alpha, the MLE on a large sample from the model lands
	// near the truth (statistical consistency).
	err := quick.Check(func(seed int64, aRaw float64) bool {
		alpha := clampParam(aRaw, 1.5, 4)
		rr := randx.New(seed)
		data := make([]float64, 8000)
		for i := range data {
			data[i] = rr.Pareto(alpha, 1)
		}
		fit := FitPowerLaw(data, 1)
		return math.Abs(fit.Alpha-alpha) < 0.15
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
