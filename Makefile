GO ?= go

.PHONY: build test race verify chaos bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything builds, all tests pass, and the
# test suite is race-clean.
verify: build test race

# chaos runs only the end-to-end fault-injection suite: a full crawl under
# an aggressive fault profile with simulated process deaths, plus the
# circuit-breaker and journal-discipline assertions.
chaos:
	$(GO) test ./internal/crawler -run 'TestChaos' -v

# bench runs the tier-2 analysis benchmarks (RunAll render, heavy-tail
# fit, Table 4 classification, Spearman) — each with its serial baseline
# and full-pool variant — and records ns/op in BENCH_analysis.json,
# the repo's performance trajectory file.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_analysis.json

fmt:
	gofmt -l -w cmd internal

vet:
	$(GO) vet ./...
