GO ?= go

.PHONY: build test race verify chaos crash fsck bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything builds, vet is clean, all tests
# pass, and the test suite is race-clean. The crash-tagged harness must at
# least compile (vet + a no-op test run), so it cannot rot unnoticed.
verify: build vet test race
	$(GO) vet -tags crash ./internal/crawler
	$(GO) test -tags crash -run '^$$' ./internal/crawler

# chaos runs only the end-to-end fault-injection suite: a full crawl under
# an aggressive fault profile with simulated process deaths, plus the
# circuit-breaker and journal-discipline assertions.
chaos:
	$(GO) test ./internal/crawler -run 'TestChaos' -v

# crash runs the crash-chaos harness (build tag: crash): crawls aborted at
# injected journal crashpoints and child crawlers SIGKILLed at randomized
# journal byte offsets, each resumed and required to converge on a
# byte-identical, fsck-clean snapshot. Set CRASH_SEED=n for new offsets.
crash:
	$(GO) test -tags crash ./internal/crawler -run 'TestCrash' -count=1 -v

# fsck validates the committed example snapshot end to end: manifest
# checksums, decodability, and the paper's referential schema.
fsck:
	$(GO) run ./cmd/steamstudy -fsck -snapshot internal/dataset/testdata/example.snap.jsonl

# bench runs the tier-2 analysis benchmarks (RunAll render, heavy-tail
# fit, Table 4 classification, Spearman) — each with its serial baseline
# and full-pool variant — and records ns/op in BENCH_analysis.json,
# the repo's performance trajectory file. It then records the obs
# hot-path costs (counter add, histogram observe, 8-goroutine contention)
# in BENCH_obs.json: the observability layer's overhead budget.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_analysis.json
	$(GO) run ./cmd/benchjson -out BENCH_obs.json -pkg ./internal/obs \
		-bench '^(BenchmarkCounterAdd|BenchmarkHistogramObserve|BenchmarkContended8)$$'

fmt:
	gofmt -l -w cmd internal

vet:
	$(GO) vet ./...
