GO ?= go

.PHONY: build test race verify chaos bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything builds, vet is clean, all tests
# pass, and the test suite is race-clean.
verify: build vet test race

# chaos runs only the end-to-end fault-injection suite: a full crawl under
# an aggressive fault profile with simulated process deaths, plus the
# circuit-breaker and journal-discipline assertions.
chaos:
	$(GO) test ./internal/crawler -run 'TestChaos' -v

# bench runs the tier-2 analysis benchmarks (RunAll render, heavy-tail
# fit, Table 4 classification, Spearman) — each with its serial baseline
# and full-pool variant — and records ns/op in BENCH_analysis.json,
# the repo's performance trajectory file. It then records the obs
# hot-path costs (counter add, histogram observe, 8-goroutine contention)
# in BENCH_obs.json: the observability layer's overhead budget.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_analysis.json
	$(GO) run ./cmd/benchjson -out BENCH_obs.json -pkg ./internal/obs \
		-bench '^(BenchmarkCounterAdd|BenchmarkHistogramObserve|BenchmarkContended8)$$'

fmt:
	gofmt -l -w cmd internal

vet:
	$(GO) vet ./...
