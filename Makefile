GO ?= go

.PHONY: build test race verify chaos crash fleetchaos fsck bench scalebench querybench querychaos profile fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: everything builds, vet is clean, all tests
# pass, and the test suite is race-clean. The crash-tagged harness must at
# least compile (vet + a no-op test run), so it cannot rot unnoticed.
verify: build vet test race
	$(GO) vet -tags crash ./internal/crawler ./internal/fleet
	$(GO) test -tags crash -run '^$$' ./internal/crawler ./internal/fleet
	$(GO) vet -tags scale ./internal/scale
	$(GO) test -tags scale -run '^$$' ./internal/scale
	$(GO) build ./cmd/steamquery ./cmd/steamqueryload
	$(GO) test -race ./internal/query
	$(GO) test -race ./internal/dataset -run 'Stream|Shard|WriteUniverse|Merge'
	$(GO) test -race ./internal/analysis -run 'StreamTable4'

# chaos runs only the end-to-end fault-injection suite: a full crawl under
# an aggressive fault profile with simulated process deaths, plus the
# circuit-breaker and journal-discipline assertions.
chaos:
	$(GO) test ./internal/crawler -run 'TestChaos' -v

# crash runs the crash-chaos harness (build tag: crash): crawls aborted at
# injected journal crashpoints and child crawlers SIGKILLed at randomized
# journal byte offsets, each resumed and required to converge on a
# byte-identical, fsck-clean snapshot. Set CRASH_SEED=n for new offsets.
crash:
	$(GO) test -tags crash ./internal/crawler -run 'TestCrash' -count=1 -v

# fleetchaos runs the distributed-crawl chaos harness (build tag: crash),
# two modes: worker processes sharing one lease table SIGKILLed at
# randomized byte offsets of the fleet directory's growth and replaced
# under fresh worker IDs, and a heartbeat-suppressed worker SIGSTOPped
# past its lease TTL whose shard a successor fences at a higher epoch
# before the zombie resumes (the fencing-token proof: the zombie must
# self-terminate on ErrFenced with fence_rejections firing). The merged
# snapshot must be byte-identical to an undisturbed solo crawl and
# fsck-clean either way. Set CRASH_SEED=n for a new kill schedule.
fleetchaos:
	$(GO) test -tags crash ./internal/fleet -run 'TestFleetChaos' -count=1 -v

# fsck validates the committed example snapshot end to end: manifest
# checksums, decodability, and the paper's referential schema.
fsck:
	$(GO) run ./cmd/steamstudy -fsck -snapshot internal/dataset/testdata/example.snap.jsonl

# bench refreshes the repo's performance trajectory files. Each suite
# runs once at GOMAXPROCS=1 and once with every core (benchjson skips the
# second pass on single-CPU hosts), and every recorded result carries the
# GOMAXPROCS it actually ran under, so a workers=max number is never
# mistaken for a parallel speedup the machine could not have produced.
#   BENCH_analysis.json — tier-2 analysis benchmarks (RunAll render,
#     heavy-tail fit, Table 4 classification, Spearman), serial baseline
#     and full-pool variant of each.
#   BENCH_obs.json — obs hot-path costs (counter add, histogram observe,
#     8-goroutine contention): the observability layer's overhead budget.
#   BENCH_datapath.json — the parallel data plane at 500k-user scale
#     (generate, snapshot encode/decode, fsck; workers=1 vs workers=max)
#     plus the hand-rolled JSONL codec against encoding/json.
# scalebench is the out-of-core proof (DESIGN.md §16), two parts:
#   1. the scale-tagged byte-identity harness — at 500k users the
#      streamed encode must match the in-memory Save byte for byte, the
#      sharded layout must round-trip to the same content signature and
#      fsck clean, and the streaming Table 4 must render identically to
#      the in-memory experiment (SCALE_USERS=n overrides the population);
#   2. the budgeted pipeline — a 5M-user sharded generate → fsck →
#      streaming Table 4, each stage a separate process capped at 2 GiB
#      MaxRSS, recorded in BENCH_scale.json. Any stage over budget fails
#      the target after the numbers are written.
scalebench:
	$(GO) test -tags scale ./internal/scale -run TestStreamingPipelineByteIdentity -count=1 -v -timeout 30m
	$(GO) run ./cmd/benchjson -scale -users 5000000 -shard-size 250000 \
		-max-rss-mb 2048 -out BENCH_scale.json

bench:
	$(GO) run ./cmd/benchjson -out BENCH_analysis.json
	$(GO) run ./cmd/benchjson -out BENCH_obs.json -pkg ./internal/obs \
		-bench '^(BenchmarkCounterAdd|BenchmarkHistogramObserve|BenchmarkContended8)$$'
	$(GO) run ./cmd/benchjson -out BENCH_datapath.json -pkg ./internal/dataset \
		-bench '^(BenchmarkDatapath|BenchmarkJSONL(Encode|Decode))'

# querybench measures the read-side query service under load:
#   BENCH_query.json — 1M requests over a seeded /v1 mix against an
#     in-process steamquery server holding a 100k-user snapshot:
#     p50/p90/p99 latency (overall and per route), throughput, cache
#     hit rate, 304 count, and a shed/error/timeout classification.
# The run is SLO-gated by BENCH_query_slo.json: a per-route p99, shed
# rate or error rate past its committed budget exits non-zero. The
# snapshot is built fresh into a temp dir so the target needs no
# checked-in fixtures; regenerating it costs a few seconds.
querybench:
	$(eval QBDIR := $(shell mktemp -d))
	$(GO) run ./cmd/steamgen -users 100000 -seed 1 -out $(QBDIR)/query.jsonl.gz
	$(GO) run ./cmd/steamqueryload -snapshot $(QBDIR)/query.jsonl.gz \
		-requests 1000000 -seed 1 -slo BENCH_query_slo.json -out BENCH_query.json
	rm -rf $(QBDIR)

# querychaos is the overload proof (DESIGN.md §15): the same load mix
# runs while hostile actors attack the server — slowloris header
# tricklers and stalled readers (must be cut by the http.Server
# timeouts), mid-body aborts, 64-wide request bursts into an 8-slot
# admission pool (must shed 503 + Retry-After, never 5xx), a SIGHUP
# reload storm, and a corrupt-snapshot reload (must fail with the old
# state still serving, ETag unchanged). Results land in the "chaos"
# section of BENCH_query.json (the calm-weather numbers are preserved);
# the built-in invariants plus the chaos section of
# BENCH_query_slo.json gate the exit code.
querychaos:
	$(eval QCDIR := $(shell mktemp -d))
	$(GO) run ./cmd/steamgen -users 5000 -seed 1 -out $(QCDIR)/chaos.jsonl.gz
	$(GO) run ./cmd/steamqueryload -snapshot $(QCDIR)/chaos.jsonl.gz \
		-requests 20000 -seed 1 -chaos -max-inflight 8 -queue-wait 25ms \
		-route-timeout 500ms -warm-keys 8 \
		-slo BENCH_query_slo.json -out BENCH_query.json
	rm -rf $(QCDIR)

# profile captures CPU and heap profiles of the data plane's hot loops
# into ./profiles/ for `go tool pprof`: the 500k-user snapshot codec and
# the full-study render.
profile:
	mkdir -p profiles
	$(GO) test ./internal/dataset -run '^$$' \
		-bench '^BenchmarkDatapath(Encode|Decode)500k$$' \
		-cpuprofile profiles/datapath_cpu.prof -memprofile profiles/datapath_mem.prof
	$(GO) test . -run '^$$' -bench '^BenchmarkRunAllRender$$' \
		-cpuprofile profiles/analysis_cpu.prof -memprofile profiles/analysis_mem.prof

fmt:
	gofmt -l -w cmd internal

vet:
	$(GO) vet ./...
