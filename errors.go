package steamstudy

import (
	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
	"steamstudy/internal/fleet"
)

// Sentinel errors and integrity types from the crawl/merge machinery,
// re-exported so external callers can errors.Is against the stable
// facade instead of importing internal packages.

var (
	// ErrFenced reports a journal append rejected because the worker's
	// lease epoch was superseded — a paused worker resumed after its
	// shard was re-leased, and its writes were fenced off.
	ErrFenced = crawler.ErrFenced

	// ErrLeaseLost reports a fleet worker discovering its shard lease
	// expired (or was taken over) when it tried to renew.
	ErrLeaseLost = fleet.ErrLeaseLost

	// ErrParamsMismatch reports a fleet worker joining a coordination
	// directory whose recorded crawl parameters disagree with its own —
	// shards crawled under different settings cannot be merged.
	ErrParamsMismatch = fleet.ErrParamsMismatch

	// ErrIncomplete reports a fleet merge attempted while shards are
	// still unfinished; the merged snapshot would silently miss ranges.
	ErrIncomplete = fleet.ErrIncomplete
)

// Snapshot-integrity surface: manifests pin a snapshot file's bytes,
// Fsck validates the decoded records against the paper's referential
// schema. See the dataset package for the full machinery; these aliases
// cover what callers of LoadSnapshot/FsckFile need to inspect results.
type (
	// Manifest is the sidecar checksum file written next to every
	// snapshot: whole-file SHA-256 plus per-section record counts/CRCs.
	Manifest = dataset.Manifest

	// FsckReport is the outcome of a snapshot integrity check:
	// per-class violation counts and a bounded sample of each.
	FsckReport = dataset.Report

	// FsckViolation is one integrity violation (class, message, and the
	// offending record's identity).
	FsckViolation = dataset.Violation

	// FsckViolationClass names a category of integrity violation.
	FsckViolationClass = dataset.ViolationClass
)

// ReadManifest loads the manifest sidecar for a snapshot path.
func ReadManifest(path string) (*Manifest, error) { return dataset.ReadManifest(path) }

// FsckFile loads a snapshot file, verifies it against its manifest when
// one is present, and checks referential integrity. Corruption lands in
// the report; the error is reserved for environmental problems. Use
// dataset.FsckFile directly to also collect integrity metrics.
func FsckFile(path string, opts ...dataset.Option) (*FsckReport, error) {
	return dataset.FsckFile(path, nil, opts...)
}
